// Cycle-level testbench: owns wires and modules, runs the two-phase
// (combinational settle, then clock edge) simulation loop.
//
// Two settle schedulers are available (DESIGN.md section 10):
//
//  * SettleMode::kActivity (default) -- the activity-driven scheduler.
//    Every module declares its input wires (Module::inputs), so each settle
//    re-evaluates only modules whose inputs changed since the last pass,
//    seeded from the dirty-wire set (WireChangeLog) and from modules whose
//    declared next_activity() horizon arrived.  Between cycles, run()
//    fast-forwards over provably quiescent gaps -- no wire firing and every
//    module's horizon in the future -- in one jump (Module::advance), which
//    is what makes the paper's high-PERIOD regimes (Fig. 4, the
//    validation_injector calibration) cheap: a PERIOD=1000 gate costs ~2
//    settled cycles per period instead of 1000.
//  * SettleMode::kNaive -- the original exhaustive loop (every module
//    re-evaluated every pass, every cycle stepped).  Kept as the reference
//    implementation: the golden-trace differential suite
//    (tests/axi/sched_equiv_test.cpp, tests/property/axi_sched_fuzz_test.cpp)
//    proves both modes produce byte-identical per-cycle wire traces.
//    TFSIM_SETTLE=naive forces it globally as an escape hatch.
//
// Every wire a testbench creates is bound to a WireChecker, and every module
// it adds is handed the testbench's ViolationSink, so the AXI4-Stream
// protocol assertions (see checker.hpp) run by default.  The default mode is
// strict -- any violation throws ProtocolError, like a SystemVerilog
// assertion aborting the simulation; tests that inject bugs on purpose
// construct the bench with CheckMode::kCollect and inspect sink().
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "axi/checker.hpp"
#include "axi/module.hpp"
#include "axi/stream.hpp"

namespace tfsim::axi {

/// Settle-loop scheduler selection.
enum class SettleMode {
  kNaive,     ///< exhaustive: every module, every pass, every cycle
  kActivity,  ///< sensitivity-list settle + quiescent-gap fast-forward
};

const char* to_string(SettleMode mode);

/// Resolves $TFSIM_SETTLE ("naive" or "activity"); defaults to kActivity.
/// A set-but-malformed value is a configuration bug: fail loudly.
SettleMode default_settle_mode();

class Testbench : public ModuleScheduler {
 public:
  explicit Testbench(CheckMode mode = CheckMode::kStrict,
                     SettleMode settle = default_settle_mode()) {
    sink_.set_mode(mode);
    settle_mode_ = settle;
  }
  // Wires hold a pointer into change_log_ and modules point back at the
  // bench, so the testbench must never move.
  Testbench(const Testbench&) = delete;
  Testbench& operator=(const Testbench&) = delete;
  virtual ~Testbench() = default;

  /// Create a wire owned by the testbench.  A WireChecker is bound to it
  /// automatically (protocol assertions are on by default).
  Wire& wire(std::string label);

  /// Construct and register a module.  Returns a reference with the
  /// testbench retaining ownership.  The testbench's violation sink is
  /// attached so self-checking modules report into it, and the module's
  /// sensitivity list is wired into the settle scheduler.
  template <typename M, typename... Args>
  M& add(Args&&... args) {
    auto mod = std::make_unique<M>(std::forward<Args>(args)...);
    M& ref = *mod;
    modules_.push_back(std::move(mod));
    register_module(ref);
    return ref;
  }

  /// Watch a region (entry wires -> exit wires) for beat conservation:
  /// beats-in == beats-out, unmodified, in per-TDEST order.
  /// `allowed_in_flight` is the region's legitimate internal buffering
  /// (FIFO capacity etc.), checked by finish_checks().
  FlowChecker& watch_flow(std::string name, std::vector<const Wire*> entries,
                          std::vector<const Wire*> exits,
                          std::uint64_t allowed_in_flight = 0);

  /// Advance one clock cycle: settle combinational logic, then tick.
  /// Throws std::runtime_error naming the still-toggling modules if the
  /// combinational loop does not converge (a genuine combinational cycle in
  /// the module graph), and ProtocolError in strict mode when a checker
  /// fires.
  void step();

  /// Advance n cycles.  In kActivity mode, provably quiescent gaps are
  /// fast-forwarded in one jump; cycle(), all monitor statistics, and every
  /// checker observation end up exactly as if each cycle had been stepped.
  void run(std::uint64_t n);

  /// End-of-test assertions: unterminated packets (WireChecker) and beat
  /// conservation (FlowChecker).  Call after the last step().
  void finish_checks();

  std::uint64_t cycle() const { return cycle_; }

  SettleMode settle_mode() const { return settle_mode_; }

  /// Scheduler instrumentation (tests and bench/axi_microbench).
  std::uint64_t eval_calls() const { return eval_calls_; }
  std::uint64_t stepped_cycles() const { return stepped_cycles_; }
  std::uint64_t skipped_cycles() const { return skipped_cycles_; }

  ViolationSink& sink() { return sink_; }
  const ViolationSink& sink() const { return sink_; }
  void set_check_mode(CheckMode mode) { sink_.set_mode(mode); }

  /// ModuleScheduler: mark a module due at the next settle (out-of-band
  /// state change, e.g. RateGate::set_period or Source::push).
  void wake_module(std::size_t module_index) override;

 private:
  void register_module(Module& m);
  void settle();
  void settle_naive();
  void settle_activity();
  void schedule(std::size_t module_index);
  void schedule_wire_listeners(std::uint32_t wire_index);
  bool any_wire_fires() const;
  [[noreturn]] void throw_non_convergence(
      const std::vector<std::size_t>& culprits) const;

  ViolationSink sink_;
  SettleMode settle_mode_ = SettleMode::kActivity;
  std::vector<std::unique_ptr<Wire>> wires_;
  std::vector<std::unique_ptr<Module>> modules_;
  std::vector<WireChecker*> wire_checkers_;
  std::vector<FlowChecker*> flow_checkers_;
  std::uint64_t cycle_ = 0;

  WireChangeLog change_log_;
  std::vector<std::vector<std::size_t>> listeners_;  ///< wire -> modules
  std::vector<std::size_t> catch_all_;  ///< modules sensitive to every wire
  std::vector<std::uint64_t> wake_at_;  ///< per-module activity horizon
  // Settle worklist scratch (member vectors to avoid per-cycle allocation).
  std::vector<std::uint8_t> queued_;
  std::vector<std::size_t> pending_;
  std::vector<std::size_t> next_pending_;
  std::vector<std::size_t> culprits_;
  bool last_step_fired_ = false;

  std::uint64_t eval_calls_ = 0;
  std::uint64_t stepped_cycles_ = 0;
  std::uint64_t skipped_cycles_ = 0;
};

}  // namespace tfsim::axi
