#include "axi/monitor.hpp"

#include <sstream>

namespace tfsim::axi {

Monitor::Monitor(std::string name, Wire& wire, bool check_id_order)
    : Module(std::move(name)), wire_(wire), check_id_order_(check_id_order) {}

void Monitor::violation(std::uint64_t cycle, const std::string& what) {
  std::ostringstream os;
  os << name() << " @" << cycle << ": " << what;
  violations_.push_back(os.str());
}

void Monitor::tick(std::uint64_t cycle) {
  if (prev_offered_) {
    // An un-accepted VALID may not be retracted and its payload must hold.
    if (!wire_.valid()) {
      violation(cycle, "VALID retracted before READY");
    } else if (!(wire_.beat() == prev_beat_)) {
      violation(cycle, "payload changed while VALID waiting for READY");
    }
  }
  if (wire_.fire()) {
    if (any_fire_) {
      gaps_.add(static_cast<double>(cycle - last_fire_cycle_));
    }
    if (check_id_order_ && any_fire_ && wire_.beat().id <= last_id_) {
      violation(cycle, "beat id not strictly increasing");
    }
    last_id_ = wire_.beat().id;
    last_fire_cycle_ = cycle;
    any_fire_ = true;
    ++fires_;
  }
  prev_offered_ = wire_.valid() && !wire_.ready();
  if (prev_offered_) prev_beat_ = wire_.beat();
}

}  // namespace tfsim::axi
