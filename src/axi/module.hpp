// Base class for cycle-level AXI4-Stream modules.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

namespace tfsim::axi {

class ViolationSink;  // checker.hpp
enum class ViolationKind;
class Wire;  // stream.hpp

/// Scheduling hooks a module reports into; implemented by Testbench.  Lets
/// modules request re-evaluation after an out-of-band state change
/// (RateGate::set_period, Source::push) without module.hpp depending on
/// testbench.hpp.
class ModuleScheduler {
 public:
  virtual void wake_module(std::size_t module_index) = 0;

 protected:
  ~ModuleScheduler() = default;
};

/// A clocked hardware block.  Each simulated cycle the testbench:
///   1. calls eval() on modules until no wire changes (combinational
///      settle; the activity scheduler visits only modules whose declared
///      inputs changed or whose next_activity() horizon arrived), then
///   2. calls tick(cycle) once on each module (clock edge: state update).
///
/// eval() must be idempotent for fixed inputs, must read only the wires
/// declared by inputs() (plus the module's own registers), and must not
/// mutate registers; tick() observes the settled wires (e.g. fire()) and
/// updates registers.  The scheduler contract (inputs / next_activity /
/// advance) has conservative defaults: a module that overrides none of them
/// is re-evaluated on every wire change and stepped every cycle, exactly as
/// the naive exhaustive loop would.
class Module {
 public:
  /// next_activity() return value meaning "only an input-wire change can
  /// affect this module" -- it is never due on its own.
  static constexpr std::uint64_t kIdle =
      std::numeric_limits<std::uint64_t>::max();

  explicit Module(std::string name) : name_(std::move(name)) {}
  virtual ~Module();
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// Combinational phase: read input wires, drive output wires.
  virtual void eval() {}
  /// Sequential phase: clock edge at cycle `cycle`.
  virtual void tick(std::uint64_t cycle) = 0;

  /// Sensitivity list: the wires eval() reads.  std::nullopt (the default)
  /// means "unknown" and the module is treated as sensitive to every wire;
  /// an empty vector means eval() reads no wires at all (pure state-driven
  /// drivers like Source, or tick-only observers like Monitor).
  virtual std::optional<std::vector<const Wire*>> inputs() const {
    return std::nullopt;
  }

  /// Activity horizon, queried after every tick with `next` = the next cycle
  /// to be simulated.  Return the earliest cycle >= next at which this
  /// module's eval() could drive different wire values or its tick() could
  /// change state, assuming (a) no wire changes in the meantime and (b) no
  /// handshake fires in the meantime (the testbench never fast-forwards
  /// across a firing wire).  Return kIdle when only an input change can
  /// affect the module.  Returning `next` pins the module active every
  /// cycle -- the safe default.
  virtual std::uint64_t next_activity(std::uint64_t next) const {
    return next;
  }

  /// Fast-forward across `cycles` provably quiescent cycles.  Called by
  /// Testbench::run() instead of that many tick()s, only when every module's
  /// next_activity() horizon is beyond the gap and no wire fires: wires are
  /// frozen for the whole gap.  Implementations must leave the module in
  /// exactly the state `cycles` consecutive tick()s would have (RateGate
  /// advances COUNTER and its stall tally; most modules have nothing to do).
  virtual void advance(std::uint64_t cycles) { (void)cycles; }

  const std::string& name() const { return name_; }

  /// Attach the testbench's violation sink.  Self-checking modules
  /// (RateGate, Router, RoundRobinMux) report protocol violations into it;
  /// modules without self-checks ignore it.  Done automatically by
  /// Testbench::add().
  void attach_sink(ViolationSink* sink) { sink_ = sink; }

  /// Attach the owning testbench's scheduler.  Done by Testbench::add().
  void attach_scheduler(ModuleScheduler* scheduler, std::size_t index) {
    scheduler_ = scheduler;
    scheduler_index_ = index;
  }

 protected:
  ViolationSink* sink() const { return sink_; }
  /// Report a violation into the attached sink (no-op when detached).
  /// Defined in module.cpp to keep checker.hpp out of this header.
  void report_violation(ViolationKind kind, std::uint64_t cycle,
                        const std::string& detail) const;

  /// Request re-evaluation at the next settle and invalidate any cached
  /// activity horizon.  Call after an out-of-band state change that eval()
  /// or next_activity() depends on (reconfiguration, queued stimulus).
  void request_wake() {
    if (scheduler_ != nullptr) scheduler_->wake_module(scheduler_index_);
  }

 private:
  std::string name_;
  ViolationSink* sink_ = nullptr;
  ModuleScheduler* scheduler_ = nullptr;
  std::size_t scheduler_index_ = 0;
};

}  // namespace tfsim::axi
