// Base class for cycle-level AXI4-Stream modules.
#pragma once

#include <cstdint>
#include <string>

namespace tfsim::axi {

/// A clocked hardware block.  Each simulated cycle the testbench:
///   1. calls eval() on all modules repeatedly until no wire changes
///      (combinational settle), then
///   2. calls tick(cycle) once on each module (clock edge: state update).
///
/// eval() must be idempotent for fixed inputs; tick() observes the settled
/// wires (e.g. fire()) and updates registers.
class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}
  virtual ~Module();
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// Combinational phase: read input wires, drive output wires.
  virtual void eval() {}
  /// Sequential phase: clock edge at cycle `cycle`.
  virtual void tick(std::uint64_t cycle) = 0;

  const std::string& name() const { return name_; }

 private:
  std::string name_;
};

}  // namespace tfsim::axi
