// Base class for cycle-level AXI4-Stream modules.
#pragma once

#include <cstdint>
#include <string>

namespace tfsim::axi {

class ViolationSink;  // checker.hpp
enum class ViolationKind;

/// A clocked hardware block.  Each simulated cycle the testbench:
///   1. calls eval() on all modules repeatedly until no wire changes
///      (combinational settle), then
///   2. calls tick(cycle) once on each module (clock edge: state update).
///
/// eval() must be idempotent for fixed inputs; tick() observes the settled
/// wires (e.g. fire()) and updates registers.
class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}
  virtual ~Module();
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// Combinational phase: read input wires, drive output wires.
  virtual void eval() {}
  /// Sequential phase: clock edge at cycle `cycle`.
  virtual void tick(std::uint64_t cycle) = 0;

  const std::string& name() const { return name_; }

  /// Attach the testbench's violation sink.  Self-checking modules
  /// (RateGate, Router, RoundRobinMux) report protocol violations into it;
  /// modules without self-checks ignore it.  Done automatically by
  /// Testbench::add().
  void attach_sink(ViolationSink* sink) { sink_ = sink; }

 protected:
  ViolationSink* sink() const { return sink_; }
  /// Report a violation into the attached sink (no-op when detached).
  /// Defined in module.cpp to keep checker.hpp out of this header.
  void report_violation(ViolationKind kind, std::uint64_t cycle,
                        const std::string& detail) const;

 private:
  std::string name_;
  ViolationSink* sink_ = nullptr;
};

}  // namespace tfsim::axi
