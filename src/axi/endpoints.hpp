// Traffic endpoints for cycle-level testbenches: a configurable beat source
// (models the cache-miss stream arriving at the egress pipeline) and a sink
// (models the downstream multiplexer / link interface).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "axi/module.hpp"
#include "axi/stream.hpp"
#include "sim/rng.hpp"

namespace tfsim::axi {

/// Produces beats on its output wire.  Beats come from an explicit queue or,
/// if `saturate` is set, an endless stream of auto-numbered beats.  An
/// optional valid-probability models a bursty upstream.
class Source final : public Module {
 public:
  struct Config {
    bool saturate = false;        ///< endless supply of beats
    double valid_probability = 1.0;  ///< chance VALID is offered each cycle
    std::uint32_t dest = 0;       ///< TDEST stamped on generated beats
    std::uint64_t seed = 1;
  };

  Source(std::string name, Wire& out, Config cfg);
  Source(std::string name, Wire& out);

  /// Enqueue an explicit beat (used when not saturating).  Wakes the
  /// scheduler: a source that went idle becomes active again.
  void push(const Beat& beat);

  void eval() override;
  void tick(std::uint64_t cycle) override;
  /// eval() reads no wires: VALID/payload are pure functions of the queue
  /// and the offer coin flip.
  std::optional<std::vector<const Wire*>> inputs() const override {
    return std::vector<const Wire*>{};
  }
  /// Idle while an un-accepted offer is held (AXI pins VALID, so no coin
  /// flips happen) and, for a deterministic valid-probability, while there
  /// is nothing to send.  A probabilistic source re-flips every cycle it is
  /// not mid-offer and therefore never permits a fast-forward: the flips
  /// consume RNG state the naive loop would also consume.  With p >= 1 or
  /// p <= 0 every flip lands the same way regardless of the draw, so
  /// skipping the draws is trace-equivalent.
  std::uint64_t next_activity(std::uint64_t next) const override;

  std::uint64_t emitted() const { return emitted_; }
  bool idle() const { return !cfg_.saturate && queue_.empty(); }

 private:
  bool has_beat() const { return cfg_.saturate || !queue_.empty(); }
  bool deterministic_offer() const {
    return cfg_.valid_probability >= 1.0 || cfg_.valid_probability <= 0.0;
  }
  Beat front_beat() const;

  Wire& out_;
  Config cfg_;
  std::deque<Beat> queue_;
  std::uint64_t next_id_ = 0;
  std::uint64_t emitted_ = 0;
  bool offer_ = true;  ///< this cycle's VALID coin flip
  tfsim::sim::Rng rng_;
};

/// Consumes beats from its input wire, recording (cycle, beat).  Ready
/// behaviour: always, probabilistic, or a fixed pattern (to test gate
/// composition with a stalling downstream).
class Sink final : public Module {
 public:
  struct Config {
    double ready_probability = 1.0;
    std::uint64_t seed = 2;
  };

  Sink(std::string name, Wire& in, Config cfg);
  Sink(std::string name, Wire& in);

  void eval() override;
  void tick(std::uint64_t cycle) override;
  std::optional<std::vector<const Wire*>> inputs() const override {
    return std::vector<const Wire*>{};
  }
  /// A probabilistic sink re-flips READY every cycle (consuming RNG state),
  /// so it is active every cycle; a deterministic one (p >= 1 or p <= 0)
  /// pins READY and is idle while nothing fires.
  std::uint64_t next_activity(std::uint64_t next) const override;

  struct Arrival {
    std::uint64_t cycle;
    Beat beat;
  };
  const std::vector<Arrival>& arrivals() const { return arrivals_; }
  std::uint64_t received() const { return arrivals_.size(); }

 private:
  Wire& in_;
  Config cfg_;
  std::vector<Arrival> arrivals_;
  bool accept_ = true;
  tfsim::sim::Rng rng_;
};

}  // namespace tfsim::axi
