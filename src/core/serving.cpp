#include "core/serving.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <stdexcept>

#include "ctrl/health.hpp"
#include "ctrl/qos.hpp"
#include "ctrl/serving_control.hpp"
#include "sim/log.hpp"

namespace tfsim::core {

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

namespace {

/// Lender-side serving state.  Mutated only by events on the lender's own
/// domain calendar (QoS credits, the serial service queue), which is the
/// PDES-safety contract: concurrent borrower domains reach it exclusively
/// through post_routed frames that arrive on the lender's calendar.
struct LenderState {
  net::NodeId net_id = 0;
  sim::Engine* engine = nullptr;
  sim::Time busy_until = 0;
  sim::Time dead_at = sim::kTimeNever;
  std::unique_ptr<ctrl::CreditQos> qos;  ///< null = uncapped lender
  std::uint64_t served = 0;
  /// Gray windows (chaos timeline): bandwidth_factor holds the service
  /// inflation (> 1), start/end the window.  Read-only after assembly.
  std::vector<net::FlapSpec> gray;
  std::uint64_t gray_seed = 0;   ///< jitter stream for inflated service
  std::uint64_t gray_draws = 0;  ///< monotone draw counter (lender-owned)
  std::uint64_t gray_hits = 0;   ///< requests served inside a gray window
};

/// Borrower-side per-(borrower, tenant) source state.  Mutated only from
/// the borrower's domain (arrival, completion, timeout and observer events
/// all run there).
struct SourceState {
  static constexpr std::uint32_t kNoLender = ~std::uint32_t{0};

  std::size_t borrower_idx = 0;
  std::uint32_t tenant_idx = 0;
  net::NodeId borrower_net = 0;
  std::uint32_t target = 0;               ///< current lender index
  std::vector<std::uint32_t> failover;    ///< remaining chain, lender indexes
  std::uint32_t consecutive_failures = 0;
  std::uint64_t failovers = 0;
  /// ECMP flow identity: the request salt is a pure function of (source
  /// index, stripe_shift), so every request of this source rides one spine
  /// path until a re-stripe bumps the shift and rehashes the flow.
  std::uint32_t stripe_shift = 0;
  std::uint64_t restripes = 0;
  std::uint64_t rejoins = 0;
  std::uint64_t dispatches = 0;
  /// Online detector over this source's view of its current target; absent
  /// when the scenario leaves detector.enabled false (timeout-only mode).
  std::optional<ctrl::HealthDetector> detector;
  /// Routing-decision generation, bumped on every re-stripe or migration.
  /// Outcomes of requests dispatched under an older epoch say nothing about
  /// the *current* route, so they feed the tail tracker but are invisible
  /// to the detector and the timeout backstop -- without this, the stale
  /// timeouts of a just-abandoned path re-trip the detector and every
  /// reaction triggers the next one.
  std::uint32_t epoch = 0;
  /// Dispatch id -> epoch at dispatch time (detector mode only; bounded by
  /// the source's in-flight window, erased at the terminal outcome).
  std::map<std::uint64_t, std::uint32_t> inflight_epoch;
  /// Two-strike escalation: the first sick verdict re-stripes (maybe it
  /// was the path -- the cheap fix), the second migrates (it was the
  /// lender).  Cleared by migration and rejoin.
  bool escalated = false;
  /// Lender abandoned on a detector migration, probed for rejoin; kNoLender
  /// when the source sits on its preferred target.
  std::uint32_t abandoned_primary = kNoLender;
  double healthy_baseline_us = 0.0;  ///< baseline snapshot at migration
  std::uint32_t good_probes = 0;
  /// Dispatch ids currently riding as probes to the abandoned primary.
  /// Probe outcomes feed the rejoin decision and the (honest) tail tracker
  /// but never the detector or the timeout-failover walk.
  std::set<std::uint64_t> probe_ids;
  TailTracker tracker;
  std::unique_ptr<workloads::OpenLoopSource> source;

  explicit SourceState(sim::Time window) : tracker(window) {}
};

std::string fmt_us(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  return buf;
}

}  // namespace

ServingReport run_serving(node::Cluster& cluster) {
  const scenario::ScenarioSpec& spec = cluster.spec();
  const scenario::TrafficSpec& traffic = spec.traffic;
  if (!traffic.enabled()) {
    throw std::invalid_argument("run_serving: scenario has no traffic block");
  }
  sim::ParallelEngine* pdes = cluster.pdes();
  if (pdes == nullptr) {
    throw std::invalid_argument(
        "run_serving: the routed dispatcher needs per-node calendars; set "
        "pdes.threads >= 1 (1 = serial baseline)");
  }
  if (cluster.num_lenders() == 0) {
    throw std::invalid_argument("run_serving: no lender nodes");
  }

  // --- Tenant mix (default: one tenant carrying the whole rate). ----------
  std::vector<scenario::TrafficTenantSpec> tenants = traffic.tenants;
  if (tenants.empty()) tenants.push_back(scenario::TrafficTenantSpec{});

  // --- Control plane: admission + placement + failover chains. ------------
  ctrl::ServingConfig scfg;
  scfg.admission.lender_capacity_rps =
      traffic.lender_capacity_rps > 0.0 ? traffic.lender_capacity_rps : 1e18;
  scfg.failover_depth = static_cast<std::uint32_t>(cluster.num_lenders());
  ctrl::ServingController sctl(cluster.registry(),
                               ctrl::make_policy(spec.policy), scfg);

  std::map<std::uint32_t, std::uint32_t> lender_idx_by_registry;
  for (std::size_t i = 0; i < cluster.num_lenders(); ++i) {
    lender_idx_by_registry[cluster.registry_id(cluster.lender(i))] =
        static_cast<std::uint32_t>(i);
  }
  const std::uint32_t admission_borrower =
      cluster.registry_id(cluster.borrower(0));

  std::vector<ctrl::TenantSpec> tenant_specs;
  std::vector<ctrl::Placement> placements;
  for (const auto& t : tenants) {
    ctrl::TenantSpec ts;
    ts.name = t.name;
    ts.weight = t.weight;
    ts.rate_rps = traffic.rate_rps * t.rate_share;
    ts.bytes = static_cast<std::uint64_t>(traffic.tenant_gib *
                                          static_cast<double>(sim::kGiB));
    const auto placed = sctl.admit_tenant(ts, admission_borrower);
    if (!placed.has_value()) {
      throw std::runtime_error("run_serving: tenant \"" + t.name +
                               "\" rejected by admission control");
    }
    tenant_specs.push_back(ts);
    placements.push_back(*placed);
  }

  // --- Lender-side state. -------------------------------------------------
  const sim::Time svc =
      traffic.lender_capacity_rps > 0.0
          ? static_cast<sim::Time>(1e12 / traffic.lender_capacity_rps)
          : 0;
  // Gray-lender chaos windows, resolved once and attached read-only to the
  // lender whose name they target (service inflation happens inside the
  // lender's own domain events).
  const std::vector<scenario::ChaosWindow> chaos_windows =
      spec.chaos.enabled() ? scenario::resolve_chaos(spec.chaos)
                           : std::vector<scenario::ChaosWindow>{};
  for (const auto& w : chaos_windows) {
    if (w.kind == scenario::ChaosKind::kGrayLender &&
        traffic.lender_capacity_rps <= 0.0) {
      throw std::invalid_argument(
          "run_serving: chaos gray_lender needs traffic.lender_capacity_rps "
          "> 0 (an uncapped lender has no service time to inflate)");
    }
  }
  std::vector<std::unique_ptr<LenderState>> lenders;
  for (std::size_t i = 0; i < cluster.num_lenders(); ++i) {
    auto L = std::make_unique<LenderState>();
    L->net_id = cluster.lender(i).net_id();
    L->engine = &cluster.lender(i).engine();
    if (!spec.faults.kill_lender.empty() &&
        cluster.lender(i).name() == spec.faults.kill_lender) {
      L->dead_at = sim::from_us(spec.faults.kill_at_us);
    }
    for (const auto& w : chaos_windows) {
      if (w.kind != scenario::ChaosKind::kGrayLender ||
          w.target != cluster.lender(i).name()) {
        continue;
      }
      net::FlapSpec g;
      g.start = w.start;
      g.duration = w.end == sim::kTimeNever ? sim::kTimeNever - w.start
                                            : w.end - w.start;
      g.bandwidth_factor = w.factor;  // here: service inflation, > 1
      L->gray.push_back(g);
    }
    std::sort(L->gray.begin(), L->gray.end(),
              [](const net::FlapSpec& a, const net::FlapSpec& b) {
                return a.start < b.start;
              });
    L->gray_seed = net::mix64(spec.chaos.seed ^ net::mix64(i));
    if (traffic.lender_capacity_rps > 0.0) {
      ctrl::QosConfig qcfg;
      qcfg.window = sim::from_us(traffic.qos_window_us);
      qcfg.capacity_per_window = static_cast<std::uint64_t>(
          traffic.lender_capacity_rps * traffic.qos_window_us * 1e-6);
      L->qos = std::make_unique<ctrl::CreditQos>(qcfg);
      // Every tenant is registered on every lender (slot == tenant index)
      // so a failed-over tenant arrives with its weight already in place.
      for (const auto& t : tenants) L->qos->add_tenant(t.name, t.weight);
    }
    lenders.push_back(std::move(L));
  }

  // --- Borrower-side sources: one per (borrower, tenant). -----------------
  const sim::Time slo_window = sim::from_us(spec.slo.window_us);
  const SloTargets targets{spec.slo.p50_us, spec.slo.p99_us, spec.slo.p999_us};
  const std::size_t nb = cluster.num_borrowers();
  net::Network& net = cluster.network();

  std::vector<std::unique_ptr<SourceState>> states;
  sim::SplitMix64 seeds(traffic.seed);
  for (std::size_t b = 0; b < nb; ++b) {
    for (std::uint32_t ti = 0; ti < tenants.size(); ++ti) {
      auto st = std::make_unique<SourceState>(slo_window);
      st->borrower_idx = b;
      st->tenant_idx = ti;
      st->borrower_net = cluster.borrower(b).net_id();
      st->target = lender_idx_by_registry.at(placements[ti].primary);
      for (const auto rid : placements[ti].failover) {
        st->failover.push_back(lender_idx_by_registry.at(rid));
      }
      if (spec.detector.enabled) {
        ctrl::HealthConfig hc;
        hc.alpha = spec.detector.alpha;
        hc.latency_threshold = spec.detector.latency_threshold;
        hc.timeout_weight = spec.detector.timeout_weight;
        hc.warmup = spec.detector.warmup;
        hc.confirm = spec.detector.confirm;
        st->detector.emplace(hc);
      }
      states.push_back(std::move(st));
    }
  }

  for (std::size_t si = 0; si < states.size(); ++si) {
    SourceState& st = *states[si];
    const std::uint32_t ti = st.tenant_idx;

    workloads::OpenLoopConfig ocfg;
    ocfg.arrivals.kind = workloads::arrival_kind_from(traffic.process);
    ocfg.arrivals.rate_rps =
        traffic.rate_rps * tenants[ti].rate_share / static_cast<double>(nb);
    ocfg.arrivals.seed = seeds.next();
    ocfg.arrivals.burst_on_us = traffic.burst_on_us;
    ocfg.arrivals.burst_off_us = traffic.burst_off_us;
    ocfg.arrivals.diurnal_period_us = traffic.diurnal_period_us;
    ocfg.arrivals.diurnal_amplitude = traffic.diurnal_amplitude;
    ocfg.clients = traffic.clients / std::max<std::size_t>(1, states.size());
    ocfg.max_in_flight = traffic.max_in_flight;
    ocfg.queue_depth = traffic.queue_depth;
    ocfg.stop_at = sim::from_us(traffic.duration_us);
    ocfg.request_timeout = sim::from_us(traffic.timeout_us);

    auto dispatch = [&, si](sim::Time now, std::uint64_t id,
                            workloads::OpenLoopSource::CompletionFn done) {
      SourceState& src = *states[si];
      std::uint32_t li = src.target;
      // Rejoin probing: while a migrated source holds an abandoned primary,
      // every probe_interval-th dispatch rides to it instead of the current
      // target; the observer judges the echo against the healthy baseline.
      ++src.dispatches;
      bool is_probe = false;
      if (src.abandoned_primary != SourceState::kNoLender &&
          spec.detector.probe_interval > 0 &&
          src.dispatches % spec.detector.probe_interval == 0) {
        li = src.abandoned_primary;
        src.probe_ids.insert(id);
        is_probe = true;
      }
      if (src.detector.has_value() && !is_probe) {
        src.inflight_epoch.emplace(id, src.epoch);
      }
      const std::uint32_t tenant = src.tenant_idx;
      // Per-flow sticky ECMP: real fabrics hash the 5-tuple, not the packet,
      // so one source's requests ride one spine path.  The salt is a pure
      // function of (source, stripe_shift); a detector re-stripe bumps the
      // shift and rehashes the flow somewhere else -- which is what makes
      // re-striping around a sick spine possible at all.
      const std::uint64_t salt = net::mix64(
          (static_cast<std::uint64_t>(si) << 20) ^ src.stripe_shift);
      net.post_routed(
          *pdes, now, src.borrower_net, lenders[li]->net_id, traffic.req_bytes,
          sim::Priority::kBulk, salt,
          [&, si, li, tenant, salt, done](const net::Delivery& d) {
            // Lender domain.
            LenderState& L = *lenders[li];
            if (d.arrival >= L.dead_at) return;  // dead: borrower times out
            if (L.qos != nullptr && !L.qos->try_admit(tenant, d.arrival)) {
              // Credit exhaustion: a small refusal frame goes straight
              // back; the request never reaches the service queue.
              net.post_routed(
                  *pdes, d.arrival, L.net_id, states[si]->borrower_net, 64,
                  sim::Priority::kBulk, salt ^ 0x9e3779b97f4a7c15ULL,
                  [done](const net::Delivery& r) {
                    done(r.arrival, workloads::RequestOutcome::kRejected);
                  });
              return;
            }
            // Serial service queue: one request at a time at the lender's
            // serving capacity.  Inside a gray window the lender still
            // answers, just `factor`x slower with seeded jitter -- the
            // failure mode no timeout ever sees.
            const sim::Time begin = std::max(d.arrival, L.busy_until);
            sim::Time eff_svc = svc;
            if (const net::FlapSpec* g = net::active_window(L.gray, begin)) {
              const double jitter =
                  1.0 + 0.5 * net::unit_interval(net::mix64(
                                  L.gray_seed ^ net::mix64(L.gray_draws++)));
              eff_svc = static_cast<sim::Time>(static_cast<double>(svc) *
                                              g->bandwidth_factor * jitter);
              ++L.gray_hits;
            }
            const sim::Time fin = begin + eff_svc;
            L.busy_until = fin;
            ++L.served;
            L.engine->schedule_at(fin, [&, si, li, salt, done, fin] {
              LenderState& L2 = *lenders[li];
              if (fin >= L2.dead_at) return;  // died while request was queued
              net.post_routed(
                  *pdes, fin, L2.net_id, states[si]->borrower_net,
                  traffic.resp_bytes, sim::Priority::kBulk,
                  salt ^ 0x5bd1e9955bd1e995ULL,
                  [done](const net::Delivery& r) {
                    done(r.arrival, workloads::RequestOutcome::kCompleted);
                  });
            });
          });
    };

    st.source = std::make_unique<workloads::OpenLoopSource>(
        cluster.borrower(st.borrower_idx).engine(), ocfg, dispatch);
    st.source->set_observer([&, si](sim::Time arrival, sim::Time terminal,
                                    workloads::RequestOutcome outcome,
                                    std::uint64_t req_id) {
      SourceState& src = *states[si];
      // Probe outcomes feed the rejoin decision (and the honest tail
      // tracker) but never the detector or the timeout-failover walk: they
      // measure the *abandoned* lender, not the current target.
      const bool probe =
          req_id != workloads::OpenLoopSource::kNoRequestId &&
          src.probe_ids.erase(req_id) > 0;
      // Epoch attribution: an outcome only testifies about the route it was
      // dispatched under.  After a re-stripe or migration, the old route's
      // in-flight requests still terminate (mostly as timeouts); feeding
      // them to the detector would re-trip it against the *new* route.
      bool stale = false;
      if (!probe && req_id != workloads::OpenLoopSource::kNoRequestId) {
        const auto it = src.inflight_epoch.find(req_id);
        if (it != src.inflight_epoch.end()) {
          stale = it->second != src.epoch;
          src.inflight_epoch.erase(it);
        }
      }
      const auto restripe = [&src] {
        ++src.stripe_shift;
        ++src.restripes;
        ++src.epoch;
        src.consecutive_failures = 0;
        // Same lender over a new path: the healthy baseline still applies.
        src.detector->soft_reset();
      };
      const auto migrate = [&src] {
        if (src.failover.empty()) {
          src.detector->soft_reset();  // nowhere to go; keep watching
          return;
        }
        src.healthy_baseline_us = src.detector->baseline_us();
        src.abandoned_primary = src.target;
        src.target = src.failover.front();
        src.failover.erase(src.failover.begin());
        ++src.failovers;
        ++src.epoch;
        src.consecutive_failures = 0;
        src.good_probes = 0;
        src.escalated = false;
        src.detector->reset();  // a different lender: relearn the baseline
      };
      // Two-strike reaction ladder: the first sick verdict re-stripes the
      // ECMP flow (cheap; a killed spine or browned-out port is fixed by a
      // rehash), the second migrates off the lender (the gray-lender
      // signature: a new path did not help, so the lender itself is sick).
      const auto react = [&] {
        if (!src.detector.has_value() || !src.detector->sick()) return;
        if (!src.escalated) {
          src.escalated = true;
          restripe();
        } else {
          migrate();
        }
      };
      switch (outcome) {
        case workloads::RequestOutcome::kCompleted: {
          const double lat_us = sim::to_us(terminal - arrival);
          src.tracker.record_latency(terminal, lat_us);
          if (probe) {
            // A good probe completes within rejoin_margin x the healthy
            // baseline -- tighter than the sickness threshold, so a lender
            // that is merely *less* gray does not win the traffic back.
            const bool good =
                src.healthy_baseline_us <= 0.0 ||
                lat_us <=
                    spec.detector.rejoin_margin * src.healthy_baseline_us;
            if (good && ++src.good_probes >= spec.detector.rejoin_confirm) {
              // Rejoin the recovered primary; the stand-in lender returns
              // to the head of the failover chain.
              src.failover.insert(src.failover.begin(), src.target);
              src.target = src.abandoned_primary;
              src.abandoned_primary = SourceState::kNoLender;
              ++src.epoch;
              src.good_probes = 0;
              src.escalated = false;
              ++src.rejoins;
              if (src.detector.has_value()) src.detector->reset();
            } else if (!good) {
              src.good_probes = 0;
            }
            break;
          }
          if (stale) break;  // old route's echo: tracked above, nothing more
          src.consecutive_failures = 0;
          if (src.detector.has_value()) {
            src.detector->observe_latency(lat_us);
            react();
          }
          break;
        }
        case workloads::RequestOutcome::kFailed:
          src.tracker.record_failed(terminal);
          if (probe) {
            src.good_probes = 0;
            break;
          }
          if (stale) break;  // old route's timeout: not the current route
          if (src.detector.has_value()) {
            src.detector->observe_timeout();
            react();
          }
          // Reactive re-placement backstop: after enough consecutive
          // timeouts the source walks its precomputed failover chain.
          // Purely local state, so the decision is deterministic under any
          // worker count.
          if (++src.consecutive_failures >= traffic.failover_threshold &&
              !src.failover.empty()) {
            src.target = src.failover.front();
            src.failover.erase(src.failover.begin());
            ++src.failovers;
            if (src.detector.has_value()) ++src.epoch;
            src.consecutive_failures = 0;
          }
          break;
        case workloads::RequestOutcome::kRejected:
          src.tracker.record_rejected(terminal);
          if (probe) src.good_probes = 0;
          break;
        case workloads::RequestOutcome::kShed:
          src.tracker.record_shed(terminal);
          break;
      }
    });
    st.source->start();
  }

  pdes->run();

  // --- Post-run aggregation (single thread, fixed order). -----------------
  ServingReport report;
  report.targets = targets;
  TailTracker merged(slo_window);
  std::ostringstream ser;
  for (std::size_t si = 0; si < states.size(); ++si) {
    const SourceState& st = *states[si];
    const auto& c = st.source->counters();
    report.totals.offered += c.offered;
    report.totals.dispatched += c.dispatched;
    report.totals.completed += c.completed;
    report.totals.shed += c.shed;
    report.totals.rejected += c.rejected;
    report.totals.failed += c.failed;
    report.totals.in_flight += c.in_flight;
    report.totals.queued += c.queued;
    report.failovers += st.failovers;
    report.restripes += st.restripes;
    report.rejoins += st.rejoins;
    merged.merge(st.tracker);
    ser << "source " << si << " tenant=" << tenants[st.tenant_idx].name
        << " borrower=" << st.borrower_idx << " offered=" << c.offered
        << " completed=" << c.completed << " shed=" << c.shed
        << " rejected=" << c.rejected << " failed=" << c.failed
        << " in_flight=" << c.in_flight << " queued=" << c.queued
        << " target=" << st.target << " failovers=" << st.failovers
        << " restripes=" << st.restripes << " rejoins=" << st.rejoins
        << " stripe_shift=" << st.stripe_shift << "\n";
  }
  for (const auto& L : lenders) report.gray_inflated += L->gray_hits;
  for (const auto& [sw_id, sw] : cluster.network().switches()) {
    (void)sw_id;
    report.switch_chaos_drops += sw.total_chaos_drops();
  }
  for (std::uint32_t ti = 0; ti < tenants.size(); ++ti) {
    ServingTenantReport tr;
    tr.name = tenants[ti].name;
    tr.weight = tenants[ti].weight;
    tr.primary_lender = placements[ti].primary;
    for (const auto& st : states) {
      if (st->tenant_idx != ti) continue;
      const auto& c = st->source->counters();
      tr.totals.offered += c.offered;
      tr.totals.dispatched += c.dispatched;
      tr.totals.completed += c.completed;
      tr.totals.shed += c.shed;
      tr.totals.rejected += c.rejected;
      tr.totals.failed += c.failed;
      tr.totals.in_flight += c.in_flight;
      tr.totals.queued += c.queued;
      tr.failovers += st->failovers;
    }
    report.tenants.push_back(tr);
  }

  // Reconcile the registry with what the data plane did: when a tenant's
  // sources abandoned a dead primary, re-book it at the chain target the
  // first source settled on.
  for (std::uint32_t ti = 0; ti < tenants.size(); ++ti) {
    if (report.tenants[ti].failovers == 0) continue;
    for (const auto& st : states) {
      if (st->tenant_idx != ti || st->failovers == 0) continue;
      const std::uint32_t new_registry_id =
          cluster.registry_id(cluster.lender(st->target));
      sctl.record_failover(tenant_specs[ti], placements[ti].primary,
                           new_registry_id);
      break;
    }
  }

  report.windows = merged.windows(targets);
  report.overall = merged.overall();
  for (const auto& w : report.windows) {
    if (w.met) ++report.windows_met;
    ser << "window start_us=" << fmt_us(sim::to_us(w.start))
        << " completed=" << w.completed << " failed=" << w.failed
        << " shed=" << w.shed << " rejected=" << w.rejected
        << " p50=" << fmt_us(w.p50_us) << " p99=" << fmt_us(w.p99_us)
        << " p999=" << fmt_us(w.p999_us) << " met=" << (w.met ? 1 : 0)
        << "\n";
  }
  report.balanced = report.totals.balanced();
  ser << "totals offered=" << report.totals.offered
      << " completed=" << report.totals.completed
      << " shed=" << report.totals.shed
      << " rejected=" << report.totals.rejected
      << " failed=" << report.totals.failed
      << " in_flight=" << report.totals.in_flight
      << " queued=" << report.totals.queued
      << " failovers=" << report.failovers
      << " restripes=" << report.restripes
      << " rejoins=" << report.rejoins
      << " gray_inflated=" << report.gray_inflated
      << " chaos_drops=" << report.switch_chaos_drops
      << " balanced=" << (report.balanced ? 1 : 0) << "\n";
  report.serialized = ser.str();
  report.digest = fnv1a(report.serialized);
  return report;
}

}  // namespace tfsim::core
