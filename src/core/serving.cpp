#include "core/serving.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "ctrl/qos.hpp"
#include "ctrl/serving_control.hpp"
#include "sim/log.hpp"

namespace tfsim::core {

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

namespace {

/// Lender-side serving state.  Mutated only by events on the lender's own
/// domain calendar (QoS credits, the serial service queue), which is the
/// PDES-safety contract: concurrent borrower domains reach it exclusively
/// through post_routed frames that arrive on the lender's calendar.
struct LenderState {
  net::NodeId net_id = 0;
  sim::Engine* engine = nullptr;
  sim::Time busy_until = 0;
  sim::Time dead_at = sim::kTimeNever;
  std::unique_ptr<ctrl::CreditQos> qos;  ///< null = uncapped lender
  std::uint64_t served = 0;
};

/// Borrower-side per-(borrower, tenant) source state.  Mutated only from
/// the borrower's domain (arrival, completion, timeout and observer events
/// all run there).
struct SourceState {
  std::size_t borrower_idx = 0;
  std::uint32_t tenant_idx = 0;
  net::NodeId borrower_net = 0;
  std::uint32_t target = 0;               ///< current lender index
  std::vector<std::uint32_t> failover;    ///< remaining chain, lender indexes
  std::uint32_t consecutive_failures = 0;
  std::uint64_t failovers = 0;
  TailTracker tracker;
  std::unique_ptr<workloads::OpenLoopSource> source;

  explicit SourceState(sim::Time window) : tracker(window) {}
};

std::string fmt_us(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  return buf;
}

}  // namespace

ServingReport run_serving(node::Cluster& cluster) {
  const scenario::ScenarioSpec& spec = cluster.spec();
  const scenario::TrafficSpec& traffic = spec.traffic;
  if (!traffic.enabled()) {
    throw std::invalid_argument("run_serving: scenario has no traffic block");
  }
  sim::ParallelEngine* pdes = cluster.pdes();
  if (pdes == nullptr) {
    throw std::invalid_argument(
        "run_serving: the routed dispatcher needs per-node calendars; set "
        "pdes.threads >= 1 (1 = serial baseline)");
  }
  if (cluster.num_lenders() == 0) {
    throw std::invalid_argument("run_serving: no lender nodes");
  }

  // --- Tenant mix (default: one tenant carrying the whole rate). ----------
  std::vector<scenario::TrafficTenantSpec> tenants = traffic.tenants;
  if (tenants.empty()) tenants.push_back(scenario::TrafficTenantSpec{});

  // --- Control plane: admission + placement + failover chains. ------------
  ctrl::ServingConfig scfg;
  scfg.admission.lender_capacity_rps =
      traffic.lender_capacity_rps > 0.0 ? traffic.lender_capacity_rps : 1e18;
  scfg.failover_depth = static_cast<std::uint32_t>(cluster.num_lenders());
  ctrl::ServingController sctl(cluster.registry(),
                               ctrl::make_policy(spec.policy), scfg);

  std::map<std::uint32_t, std::uint32_t> lender_idx_by_registry;
  for (std::size_t i = 0; i < cluster.num_lenders(); ++i) {
    lender_idx_by_registry[cluster.registry_id(cluster.lender(i))] =
        static_cast<std::uint32_t>(i);
  }
  const std::uint32_t admission_borrower =
      cluster.registry_id(cluster.borrower(0));

  std::vector<ctrl::TenantSpec> tenant_specs;
  std::vector<ctrl::Placement> placements;
  for (const auto& t : tenants) {
    ctrl::TenantSpec ts;
    ts.name = t.name;
    ts.weight = t.weight;
    ts.rate_rps = traffic.rate_rps * t.rate_share;
    ts.bytes = static_cast<std::uint64_t>(traffic.tenant_gib *
                                          static_cast<double>(sim::kGiB));
    const auto placed = sctl.admit_tenant(ts, admission_borrower);
    if (!placed.has_value()) {
      throw std::runtime_error("run_serving: tenant \"" + t.name +
                               "\" rejected by admission control");
    }
    tenant_specs.push_back(ts);
    placements.push_back(*placed);
  }

  // --- Lender-side state. -------------------------------------------------
  const sim::Time svc =
      traffic.lender_capacity_rps > 0.0
          ? static_cast<sim::Time>(1e12 / traffic.lender_capacity_rps)
          : 0;
  std::vector<std::unique_ptr<LenderState>> lenders;
  for (std::size_t i = 0; i < cluster.num_lenders(); ++i) {
    auto L = std::make_unique<LenderState>();
    L->net_id = cluster.lender(i).net_id();
    L->engine = &cluster.lender(i).engine();
    if (!spec.faults.kill_lender.empty() &&
        cluster.lender(i).name() == spec.faults.kill_lender) {
      L->dead_at = sim::from_us(spec.faults.kill_at_us);
    }
    if (traffic.lender_capacity_rps > 0.0) {
      ctrl::QosConfig qcfg;
      qcfg.window = sim::from_us(traffic.qos_window_us);
      qcfg.capacity_per_window = static_cast<std::uint64_t>(
          traffic.lender_capacity_rps * traffic.qos_window_us * 1e-6);
      L->qos = std::make_unique<ctrl::CreditQos>(qcfg);
      // Every tenant is registered on every lender (slot == tenant index)
      // so a failed-over tenant arrives with its weight already in place.
      for (const auto& t : tenants) L->qos->add_tenant(t.name, t.weight);
    }
    lenders.push_back(std::move(L));
  }

  // --- Borrower-side sources: one per (borrower, tenant). -----------------
  const sim::Time slo_window = sim::from_us(spec.slo.window_us);
  const SloTargets targets{spec.slo.p50_us, spec.slo.p99_us, spec.slo.p999_us};
  const std::size_t nb = cluster.num_borrowers();
  net::Network& net = cluster.network();

  std::vector<std::unique_ptr<SourceState>> states;
  sim::SplitMix64 seeds(traffic.seed);
  for (std::size_t b = 0; b < nb; ++b) {
    for (std::uint32_t ti = 0; ti < tenants.size(); ++ti) {
      auto st = std::make_unique<SourceState>(slo_window);
      st->borrower_idx = b;
      st->tenant_idx = ti;
      st->borrower_net = cluster.borrower(b).net_id();
      st->target = lender_idx_by_registry.at(placements[ti].primary);
      for (const auto rid : placements[ti].failover) {
        st->failover.push_back(lender_idx_by_registry.at(rid));
      }
      states.push_back(std::move(st));
    }
  }

  for (std::size_t si = 0; si < states.size(); ++si) {
    SourceState& st = *states[si];
    const std::uint32_t ti = st.tenant_idx;

    workloads::OpenLoopConfig ocfg;
    ocfg.arrivals.kind = workloads::arrival_kind_from(traffic.process);
    ocfg.arrivals.rate_rps =
        traffic.rate_rps * tenants[ti].rate_share / static_cast<double>(nb);
    ocfg.arrivals.seed = seeds.next();
    ocfg.arrivals.burst_on_us = traffic.burst_on_us;
    ocfg.arrivals.burst_off_us = traffic.burst_off_us;
    ocfg.arrivals.diurnal_period_us = traffic.diurnal_period_us;
    ocfg.arrivals.diurnal_amplitude = traffic.diurnal_amplitude;
    ocfg.clients = traffic.clients / std::max<std::size_t>(1, states.size());
    ocfg.max_in_flight = traffic.max_in_flight;
    ocfg.queue_depth = traffic.queue_depth;
    ocfg.stop_at = sim::from_us(traffic.duration_us);
    ocfg.request_timeout = sim::from_us(traffic.timeout_us);

    auto dispatch = [&, si](sim::Time now, std::uint64_t id,
                            workloads::OpenLoopSource::CompletionFn done) {
      SourceState& src = *states[si];
      const std::uint32_t li = src.target;
      const std::uint32_t tenant = src.tenant_idx;
      const std::uint64_t salt = (static_cast<std::uint64_t>(si) << 40) ^ id;
      net.post_routed(
          *pdes, now, src.borrower_net, lenders[li]->net_id, traffic.req_bytes,
          sim::Priority::kBulk, salt,
          [&, si, li, tenant, salt, done](const net::Delivery& d) {
            // Lender domain.
            LenderState& L = *lenders[li];
            if (d.arrival >= L.dead_at) return;  // dead: borrower times out
            if (L.qos != nullptr && !L.qos->try_admit(tenant, d.arrival)) {
              // Credit exhaustion: a small refusal frame goes straight
              // back; the request never reaches the service queue.
              net.post_routed(
                  *pdes, d.arrival, L.net_id, states[si]->borrower_net, 64,
                  sim::Priority::kBulk, salt ^ 0x9e3779b97f4a7c15ULL,
                  [done](const net::Delivery& r) {
                    done(r.arrival, workloads::RequestOutcome::kRejected);
                  });
              return;
            }
            // Serial service queue: one request at a time at the lender's
            // serving capacity.
            const sim::Time begin = std::max(d.arrival, L.busy_until);
            const sim::Time fin = begin + svc;
            L.busy_until = fin;
            ++L.served;
            L.engine->schedule_at(fin, [&, si, li, salt, done, fin] {
              LenderState& L2 = *lenders[li];
              if (fin >= L2.dead_at) return;  // died while request was queued
              net.post_routed(
                  *pdes, fin, L2.net_id, states[si]->borrower_net,
                  traffic.resp_bytes, sim::Priority::kBulk,
                  salt ^ 0x5bd1e9955bd1e995ULL,
                  [done](const net::Delivery& r) {
                    done(r.arrival, workloads::RequestOutcome::kCompleted);
                  });
            });
          });
    };

    st.source = std::make_unique<workloads::OpenLoopSource>(
        cluster.borrower(st.borrower_idx).engine(), ocfg, dispatch);
    st.source->set_observer([&, si](sim::Time arrival, sim::Time terminal,
                                    workloads::RequestOutcome outcome) {
      SourceState& src = *states[si];
      switch (outcome) {
        case workloads::RequestOutcome::kCompleted:
          src.tracker.record_latency(terminal,
                                     sim::to_us(terminal - arrival));
          src.consecutive_failures = 0;
          break;
        case workloads::RequestOutcome::kFailed:
          src.tracker.record_failed(terminal);
          // Reactive re-placement: after enough consecutive timeouts the
          // source walks its precomputed failover chain.  Purely local
          // state, so the decision is deterministic under any worker count.
          if (++src.consecutive_failures >= traffic.failover_threshold &&
              !src.failover.empty()) {
            src.target = src.failover.front();
            src.failover.erase(src.failover.begin());
            ++src.failovers;
            src.consecutive_failures = 0;
          }
          break;
        case workloads::RequestOutcome::kRejected:
          src.tracker.record_rejected(terminal);
          break;
        case workloads::RequestOutcome::kShed:
          src.tracker.record_shed(terminal);
          break;
      }
    });
    st.source->start();
  }

  pdes->run();

  // --- Post-run aggregation (single thread, fixed order). -----------------
  ServingReport report;
  report.targets = targets;
  TailTracker merged(slo_window);
  std::ostringstream ser;
  for (std::size_t si = 0; si < states.size(); ++si) {
    const SourceState& st = *states[si];
    const auto& c = st.source->counters();
    report.totals.offered += c.offered;
    report.totals.dispatched += c.dispatched;
    report.totals.completed += c.completed;
    report.totals.shed += c.shed;
    report.totals.rejected += c.rejected;
    report.totals.failed += c.failed;
    report.totals.in_flight += c.in_flight;
    report.totals.queued += c.queued;
    report.failovers += st.failovers;
    merged.merge(st.tracker);
    ser << "source " << si << " tenant=" << tenants[st.tenant_idx].name
        << " borrower=" << st.borrower_idx << " offered=" << c.offered
        << " completed=" << c.completed << " shed=" << c.shed
        << " rejected=" << c.rejected << " failed=" << c.failed
        << " in_flight=" << c.in_flight << " queued=" << c.queued
        << " target=" << st.target << " failovers=" << st.failovers << "\n";
  }
  for (std::uint32_t ti = 0; ti < tenants.size(); ++ti) {
    ServingTenantReport tr;
    tr.name = tenants[ti].name;
    tr.weight = tenants[ti].weight;
    tr.primary_lender = placements[ti].primary;
    for (const auto& st : states) {
      if (st->tenant_idx != ti) continue;
      const auto& c = st->source->counters();
      tr.totals.offered += c.offered;
      tr.totals.dispatched += c.dispatched;
      tr.totals.completed += c.completed;
      tr.totals.shed += c.shed;
      tr.totals.rejected += c.rejected;
      tr.totals.failed += c.failed;
      tr.totals.in_flight += c.in_flight;
      tr.totals.queued += c.queued;
      tr.failovers += st->failovers;
    }
    report.tenants.push_back(tr);
  }

  // Reconcile the registry with what the data plane did: when a tenant's
  // sources abandoned a dead primary, re-book it at the chain target the
  // first source settled on.
  for (std::uint32_t ti = 0; ti < tenants.size(); ++ti) {
    if (report.tenants[ti].failovers == 0) continue;
    for (const auto& st : states) {
      if (st->tenant_idx != ti || st->failovers == 0) continue;
      const std::uint32_t new_registry_id =
          cluster.registry_id(cluster.lender(st->target));
      sctl.record_failover(tenant_specs[ti], placements[ti].primary,
                           new_registry_id);
      break;
    }
  }

  report.windows = merged.windows(targets);
  report.overall = merged.overall();
  for (const auto& w : report.windows) {
    if (w.met) ++report.windows_met;
    ser << "window start_us=" << fmt_us(sim::to_us(w.start))
        << " completed=" << w.completed << " failed=" << w.failed
        << " shed=" << w.shed << " rejected=" << w.rejected
        << " p50=" << fmt_us(w.p50_us) << " p99=" << fmt_us(w.p99_us)
        << " p999=" << fmt_us(w.p999_us) << " met=" << (w.met ? 1 : 0)
        << "\n";
  }
  report.balanced = report.totals.balanced();
  ser << "totals offered=" << report.totals.offered
      << " completed=" << report.totals.completed
      << " shed=" << report.totals.shed
      << " rejected=" << report.totals.rejected
      << " failed=" << report.totals.failed
      << " in_flight=" << report.totals.in_flight
      << " queued=" << report.totals.queued
      << " failovers=" << report.failovers
      << " balanced=" << (report.balanced ? 1 : 0) << "\n";
  report.serialized = ser.str();
  report.digest = fnv1a(report.serialized);
  return report;
}

}  // namespace tfsim::core
