// Serving harness: runs a scenario's open-loop "traffic" block over an
// assembled Cluster fabric and scores it against the "slo" block.
//
// One OpenLoopSource per (borrower, tenant) pair lives on the borrower's
// PDES domain; requests travel the routed fabric via Network::post_routed
// (hop-by-hop, each egress link transmitted only from its owner's domain),
// get QoS-arbitrated and serviced at the lender's domain, and return the
// same way.  All mutable state is domain-owned: borrower-side source and
// tracker state is touched only by borrower-domain events, lender-side
// queue/credit state only by lender-domain events — which is what makes the
// whole run byte-identical from 1 to N worker threads (determinism_check
// scenario 10).
//
// Control-plane decisions (admission, placement, failover chains) are made
// up front by ctrl::ServingController; mid-run lender death is handled
// reactively by the data plane — after `failover_threshold` consecutive
// timeouts a source retargets the next lender in its precomputed chain —
// and reconciled in the registry after the run.
//
// When the scenario enables the online detector (detector.enabled), each
// source additionally runs a ctrl::HealthDetector over its own completion
// latencies and timeouts.  A timeout-dominated sick verdict re-stripes the
// source's ECMP flow around the dead path; a latency-dominated one (the
// gray-lender signature) re-stripes once, then migrates to the next lender
// in the chain *before* the timeout budget burns down, snapshotting the
// healthy baseline.  Every probe_interval-th dispatch afterwards probes the
// abandoned primary; rejoin_confirm consecutive probes completing within
// threshold x baseline rejoin it.  All of this is per-source local state,
// so the chaos reactions are byte-identical from 1 to N workers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/slo.hpp"
#include "node/cluster.hpp"
#include "workloads/openloop/generator.hpp"

namespace tfsim::core {

struct ServingTenantReport {
  std::string name;
  std::uint32_t weight = 1;
  std::uint32_t primary_lender = 0;  ///< registry id at admission
  workloads::OpenLoopCounters totals;
  std::uint64_t failovers = 0;
};

struct ServingReport {
  workloads::OpenLoopCounters totals;  ///< summed over every source
  std::vector<ServingTenantReport> tenants;
  std::vector<WindowStats> windows;  ///< SLO time-series, already scored
  sim::Histogram overall;            ///< completed-request latency (us)
  SloTargets targets;
  std::uint64_t windows_met = 0;
  std::uint64_t failovers = 0;
  /// Detector-driven ECMP re-stripes (stripe_shift bumps) across sources.
  std::uint64_t restripes = 0;
  /// Sources that returned to a recovered primary after probing it healthy.
  std::uint64_t rejoins = 0;
  /// Requests served inside a gray-lender window (service-time inflated).
  std::uint64_t gray_inflated = 0;
  /// Frames dropped by chaos down windows at switches (blast radius).
  std::uint64_t switch_chaos_drops = 0;
  bool balanced = false;  ///< offered == terminal buckets + residual
  /// Canonical fixed-order serialization of every observable above; two
  /// runs agree iff these strings are byte-identical.
  std::string serialized;
  std::uint64_t digest = 0;  ///< FNV-1a over `serialized`
};

/// Run the cluster's traffic block to completion and score it.  Throws
/// std::invalid_argument when the spec has no traffic block or the cluster
/// was assembled without PDES domains (the routed dispatcher needs the
/// per-node calendars; pdes.threads = 1 gives the serial baseline).
ServingReport run_serving(node::Cluster& cluster);

/// FNV-1a 64-bit (shared by the serving bench and determinism_check).
std::uint64_t fnv1a(const std::string& s);

}  // namespace tfsim::core
