#include "core/report.hpp"

#include <algorithm>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "sim/trace.hpp"

namespace tfsim::core {

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

Table& Table::row(std::vector<std::string> cells) {
  cells.resize(columns_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::ratio(double v) {
  std::ostringstream os;
  if (v >= 100.0) {
    os << std::fixed << std::setprecision(0) << v << "x";
  } else {
    os << std::fixed << std::setprecision(2) << v << "x";
  }
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    width[c] = columns_[c].size();
    for (const auto& r : rows_) width[c] = std::max(width[c], r[c].size());
  }
  std::size_t total = columns_.size() * 3 + 1;
  for (auto w : width) total += w;

  os << "\n== " << title_ << " ==\n";
  const auto line = [&] { os << std::string(total, '-') << "\n"; };
  line();
  os << "|";
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << ' ' << std::left << std::setw(static_cast<int>(width[c]))
       << columns_[c] << " |";
  }
  os << "\n";
  line();
  for (const auto& r : rows_) {
    os << "|";
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      os << ' ' << std::left << std::setw(static_cast<int>(width[c])) << r[c]
         << " |";
    }
    os << "\n";
  }
  line();
  os.flush();
}

void Table::print() const { print(std::cout); }

bool Table::to_csv(const std::string& path) const {
  try {
    sim::CsvWriter csv(path);
    csv.header(columns_);
    for (const auto& r : rows_) {
      auto row = csv.row();
      for (const auto& cell : r) row.col(cell);
    }
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

}  // namespace tfsim::core
