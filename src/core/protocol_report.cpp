#include "core/protocol_report.hpp"

#include <map>

namespace tfsim::core {

Table violation_table(const std::string& title,
                      const std::vector<axi::Violation>& violations) {
  Table table(title, {"kind", "where", "cycle", "detail"});
  for (const auto& v : violations) {
    table.row({axi::to_string(v.kind), v.where, std::to_string(v.cycle),
               v.detail});
  }
  return table;
}

Table violation_summary(const std::string& title,
                        const axi::ViolationSink& sink) {
  Table table(title, {"violation kind", "count"});
  std::map<std::string, std::uint64_t> by_kind;  // ordered: stable output
  for (const auto& v : sink.violations()) {
    ++by_kind[axi::to_string(v.kind)];
  }
  for (const auto& [kind, count] : by_kind) {
    table.row({kind, std::to_string(count)});
  }
  table.row({"TOTAL", std::to_string(sink.total())});
  return table;
}

}  // namespace tfsim::core
