#include "core/resilience.hpp"

#include <stdexcept>

#include "mem/address.hpp"
#include "node/cluster.hpp"
#include "sim/sweep.hpp"

namespace tfsim::core {

std::string to_string(HealthClass h) {
  switch (h) {
    case HealthClass::kHealthy: return "healthy";
    case HealthClass::kRecovering: return "recovering";
    case HealthClass::kDegraded: return "degraded";
    case HealthClass::kDetached: return "detached";
    case HealthClass::kDeviceLost: return "device-lost";
  }
  return "?";
}

HealthClass parse_health_class(const std::string& name) {
  if (name == "healthy") return HealthClass::kHealthy;
  if (name == "recovering") return HealthClass::kRecovering;
  if (name == "degraded") return HealthClass::kDegraded;
  if (name == "detached") return HealthClass::kDetached;
  if (name == "device-lost") return HealthClass::kDeviceLost;
  throw std::invalid_argument("unknown health class \"" + name + "\"");
}

ResilienceProbe assess_resilience(std::uint64_t period,
                                  const ResilienceOptions& opts) {
  ResilienceProbe probe;
  probe.period = period;

  SessionConfig scfg;
  scfg.testbed = opts.testbed;
  scfg.period = period;
  scfg.placement = node::Placement::kRemote;
  Session session(scfg);

  probe.attached = session.attached();
  if (!probe.attached) {
    probe.health = HealthClass::kDeviceLost;
    return probe;
  }

  const auto stream = session.run_stream(opts.stream);
  probe.stream_latency_us = stream.avg_latency_us;
  probe.stream_bandwidth_gbps = stream.best_bandwidth_gbps;
  probe.health = probe.stream_latency_us > opts.degraded_threshold_us
                     ? HealthClass::kDegraded
                     : HealthClass::kHealthy;
  return probe;
}

HealthClass classify(const FaultProbe& probe, double degraded_threshold_us) {
  if (!probe.attached) return HealthClass::kDeviceLost;
  if (probe.detached_lenders > 0) return HealthClass::kDetached;
  if (probe.failed > 0 || probe.avg_latency_us > degraded_threshold_us) {
    return HealthClass::kDegraded;
  }
  if (probe.retries > 0) return HealthClass::kRecovering;
  return HealthClass::kHealthy;
}

FaultProbe assess_fault_point(const FaultPoint& point,
                              const FaultMatrixOptions& opts) {
  FaultProbe probe;
  probe.point = point;

  scenario::ScenarioSpec spec = opts.scenario;
  spec.injector.period = point.period;
  spec.faults.link.loss_rate = point.loss_rate;
  spec.faults.link.corrupt_rate = opts.corrupt_rate;
  spec.faults.link.seed = opts.seed;
  spec.faults.link.flaps = opts.flap_schedules.at(point.flap_schedule);

  node::Cluster cluster(spec);
  probe.attached = cluster.attach_remote();
  if (!probe.attached) {
    probe.health = HealthClass::kDeviceLost;
    return probe;
  }

  // Closed-loop probe workload: stride one cache line through the remote
  // window, one access in flight, a write every 4th access.  Deterministic
  // by construction -- the only randomness is the seeded fault stream.
  auto& nic = cluster.borrower().nic();
  const mem::Addr base = cluster.remote_base();
  const std::uint64_t span = cluster.remote_span();
  const std::uint64_t lines = span / mem::kCacheLineBytes;
  sim::Time now = 0;
  for (std::uint32_t i = 0; i < opts.accesses; ++i) {
    const mem::Addr addr =
        base + (static_cast<std::uint64_t>(i) % lines) * mem::kCacheLineBytes;
    const auto t = nic.remote_access(now, addr, i % 4 == 3);
    if (t.has_value()) {
      ++probe.completed;
      now = t->completion;
    } else {
      ++probe.failed;
    }
  }

  probe.avg_latency_us = nic.latency_us().mean();
  probe.retries = nic.replay().retries();
  probe.abandoned = nic.replay().abandoned();
  probe.crc_drops = nic.replay().crc_drops();
  probe.frames_lost = nic.replay().frames_lost();
  probe.recovered = nic.replay().recovered();
  probe.detached_lenders = nic.detached_lenders();
  // The central robustness invariant: whatever the fabric did, the books
  // balance once the loop drains -- no tag or credit is stuck in flight.
  nic.check_quiesced();
  probe.health = classify(probe, opts.degraded_threshold_us);
  return probe;
}

std::vector<FaultProbe> assess_fault_matrix(const FaultMatrixOptions& opts) {
  return assess_fault_matrix(opts, sim::SweepRunner::jobs_from_env());
}

std::vector<FaultProbe> assess_fault_matrix(const FaultMatrixOptions& opts,
                                            unsigned jobs) {
  if (opts.flap_schedules.empty()) {
    throw std::invalid_argument(
        "assess_fault_matrix: need at least one flap schedule (may be empty)");
  }
  std::vector<FaultPoint> points;
  points.reserve(opts.periods.size() * opts.loss_rates.size() *
                 opts.flap_schedules.size());
  for (const std::uint64_t period : opts.periods) {
    for (const double loss : opts.loss_rates) {
      for (std::uint32_t f = 0; f < opts.flap_schedules.size(); ++f) {
        points.push_back(FaultPoint{period, loss, f});
      }
    }
  }
  const sim::SweepRunner runner(jobs);
  return runner.map(points, [&](const FaultPoint& p) {
    return assess_fault_point(p, opts);
  });
}

}  // namespace tfsim::core
