#include "core/resilience.hpp"

namespace tfsim::core {

std::string to_string(HealthClass h) {
  switch (h) {
    case HealthClass::kHealthy: return "healthy";
    case HealthClass::kDegraded: return "degraded";
    case HealthClass::kDeviceLost: return "device-lost";
  }
  return "?";
}

ResilienceProbe assess_resilience(std::uint64_t period,
                                  const ResilienceOptions& opts) {
  ResilienceProbe probe;
  probe.period = period;

  SessionConfig scfg;
  scfg.testbed = opts.testbed;
  scfg.period = period;
  scfg.placement = node::Placement::kRemote;
  Session session(scfg);

  probe.attached = session.attached();
  if (!probe.attached) {
    probe.health = HealthClass::kDeviceLost;
    return probe;
  }

  const auto stream = session.run_stream(opts.stream);
  probe.stream_latency_us = stream.avg_latency_us;
  probe.stream_bandwidth_gbps = stream.best_bandwidth_gbps;
  probe.health = probe.stream_latency_us > opts.degraded_threshold_us
                     ? HealthClass::kDegraded
                     : HealthClass::kHealthy;
  return probe;
}

}  // namespace tfsim::core
