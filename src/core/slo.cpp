#include "core/slo.hpp"

#include <stdexcept>

namespace tfsim::core {

TailTracker::TailTracker(sim::Time window) : window_(window) {
  if (window_ == 0) {
    throw std::invalid_argument("TailTracker: window must be > 0");
  }
}

TailTracker::Window& TailTracker::at(sim::Time t) {
  return windows_[t / window_];
}

void TailTracker::record_latency(sim::Time t, double latency_us) {
  at(t).hist.add(latency_us);
  overall_.add(latency_us);
}

void TailTracker::record_failed(sim::Time t) { ++at(t).failed; }
void TailTracker::record_shed(sim::Time t) { ++at(t).shed; }
void TailTracker::record_rejected(sim::Time t) { ++at(t).rejected; }

void TailTracker::merge(const TailTracker& other) {
  if (other.window_ != window_) {
    throw std::invalid_argument("TailTracker: merging mismatched windows");
  }
  for (const auto& [idx, w] : other.windows_) {
    Window& mine = windows_[idx];
    mine.hist.merge(w.hist);
    mine.failed += w.failed;
    mine.shed += w.shed;
    mine.rejected += w.rejected;
  }
  overall_.merge(other.overall_);
}

std::vector<WindowStats> TailTracker::windows(const SloTargets& targets) const {
  std::vector<WindowStats> out;
  out.reserve(windows_.size());
  for (const auto& [idx, w] : windows_) {
    WindowStats s;
    s.start = idx * window_;
    s.completed = w.hist.count();
    s.failed = w.failed;
    s.shed = w.shed;
    s.rejected = w.rejected;
    s.p50_us = w.hist.p50();
    s.p99_us = w.hist.p99();
    s.p999_us = w.hist.p999();
    const auto within = [](double value, double target) {
      return target <= 0.0 || value <= target;
    };
    s.met = s.completed > 0 && s.failed == 0 &&
            within(s.p50_us, targets.p50_us) &&
            within(s.p99_us, targets.p99_us) &&
            within(s.p999_us, targets.p999_us);
    out.push_back(s);
  }
  return out;
}

}  // namespace tfsim::core
