// Per-request tail tracking against declared SLO targets.
//
// The serving layer needs more than end-of-run aggregates: SLO compliance
// is judged per time window (does p99 stay under target *through* the
// diurnal peak and the lender kill?), so the tracker keeps one histogram
// per fixed-length window of simulated time plus an overall histogram.
// Under PDES each borrower domain owns a private tracker; merge() folds
// them post-run in fixed index order, keeping every reported number
// byte-identical across worker counts.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "sim/stats.hpp"
#include "sim/units.hpp"

namespace tfsim::core {

/// Declared targets; 0 leaves a percentile unconstrained.
struct SloTargets {
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
};

/// One compliance window of the serving time-series.
struct WindowStats {
  sim::Time start = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;    ///< timeouts (lost frames, dead lender)
  std::uint64_t shed = 0;      ///< dropped at the borrower's full queue
  std::uint64_t rejected = 0;  ///< refused by lender QoS credits
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  /// Every constrained percentile within target, nothing failed, and at
  /// least one request completed.
  bool met = false;
};

class TailTracker {
 public:
  explicit TailTracker(sim::Time window);

  /// A request completed at `t` after `latency_us` of lifecycle time
  /// (arrival -> response), attributed to the window containing t.
  void record_latency(sim::Time t, double latency_us);
  void record_failed(sim::Time t);
  void record_shed(sim::Time t);
  void record_rejected(sim::Time t);

  /// Fold another tracker (same window length) into this one.
  void merge(const TailTracker& other);

  /// The windowed time-series scored against `targets`, in time order.
  std::vector<WindowStats> windows(const SloTargets& targets) const;

  const sim::Histogram& overall() const { return overall_; }
  sim::Time window() const { return window_; }

 private:
  struct Window {
    sim::Histogram hist;
    std::uint64_t failed = 0;
    std::uint64_t shed = 0;
    std::uint64_t rejected = 0;
  };
  Window& at(sim::Time t);

  sim::Time window_;
  std::map<std::uint64_t, Window> windows_;  // ordered: deterministic
  sim::Histogram overall_;
};

}  // namespace tfsim::core
