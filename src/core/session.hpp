// Characterization session: one configured run of the delay-injection
// framework on a fresh ThymesisFlow testbed.
//
// The paper's methodology restarts the system between runs (injected delay
// is constant within a run, changed across runs); a Session mirrors that: it
// owns a fresh Testbed with the injector configured (PERIOD, or a delay
// distribution for the future-work mode), attaches the remote memory, and
// exposes ready-to-run workload drivers.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "net/latency_dist.hpp"
#include "node/testbed.hpp"
#include "workloads/graph500/graph500.hpp"
#include "workloads/kvstore/kvstore.hpp"
#include "workloads/kvstore/memtier.hpp"
#include "workloads/stream/stream.hpp"

namespace tfsim::core {

struct SessionConfig {
  node::TestbedSpec testbed;             ///< defaults: thymesisflow_testbed()
  std::uint64_t period = 1;              ///< injector PERIOD
  /// Distribution-mode injection (overrides `period` when set).
  std::optional<net::DistKind> dist_kind;
  sim::Time dist_mean = 0;
  std::uint64_t dist_seed = 42;
  /// Workload data placement: kRemote for disaggregated runs, kLocal for
  /// the local-memory baselines of Table I.
  node::Placement placement = node::Placement::kRemote;
  /// Enable the hot-page migration daemon (the paper's proposed OS-level
  /// QoS mechanism) on the borrower.
  std::optional<node::MigrationConfig> migration;
};

class Session {
 public:
  explicit Session(const SessionConfig& cfg);

  /// True when the remote region attached (always true for kLocal
  /// placement).  False reproduces the Fig. 4 device-lost failure.
  bool attached() const { return attached_; }

  node::Testbed& testbed() { return *testbed_; }
  const SessionConfig& config() const { return cfg_; }
  /// Effective injector spacing PERIOD x Tclk (0 in distribution mode).
  sim::Time injector_interval() const;

  /// Run STREAM with the session placement.
  workloads::StreamResult run_stream(const workloads::StreamConfig& cfg);

  /// Run Graph500 BFS/SSSP kernels on a pre-built graph (copied per
  /// session).
  workloads::g500::BfsResult run_bfs(const workloads::g500::Graph500Config& cfg,
                                     workloads::g500::CsrGraph graph,
                                     std::uint32_t root);
  workloads::g500::SsspResult run_sssp(
      const workloads::g500::Graph500Config& cfg,
      workloads::g500::CsrGraph graph, std::uint32_t root);

  /// Graph500 job-level runs (kernel 1 construction + search kernel): the
  /// "job completion time" metric of Table I / Fig. 5.  The edge list is
  /// generated once by the caller and copied per session.
  workloads::g500::JobResult run_bfs_job(
      const workloads::g500::Graph500Config& cfg,
      const workloads::g500::EdgeList& edges, std::uint32_t root);
  workloads::g500::JobResult run_sssp_job(
      const workloads::g500::Graph500Config& cfg,
      const workloads::g500::EdgeList& edges, std::uint32_t root);

  /// Run the Redis-like server under Memtier load.
  workloads::kv::MemtierResult run_memtier(
      const workloads::kv::KvStoreConfig& store_cfg,
      const workloads::kv::MemtierConfig& load_cfg);

  /// Borrower NIC stats accessors (valid after a remote run).
  const nic::DisaggNic& nic() const;

 private:
  SessionConfig cfg_;
  std::unique_ptr<node::Testbed> testbed_;
  bool attached_ = false;
};

}  // namespace tfsim::core
