// Bridges the AXI protocol-assertion layer (axi/checker.hpp) into the
// report machinery: violations rendered as the same aligned tables / CSV the
// benches emit, so a characterization run can publish its protocol audit
// next to its results.
#pragma once

#include <string>
#include <vector>

#include "axi/checker.hpp"
#include "core/report.hpp"

namespace tfsim::core {

/// One row per violation: kind, location, cycle, detail.
Table violation_table(const std::string& title,
                      const std::vector<axi::Violation>& violations);

/// One row per violation kind with its count, plus a TOTAL row.  Renders
/// something even for a clean sink (a single zero TOTAL row), so reports
/// always carry an explicit protocol-audit verdict.
Table violation_summary(const std::string& title,
                        const axi::ViolationSink& sink);

}  // namespace tfsim::core
