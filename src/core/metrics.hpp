// Metrics the paper reports: performance degradation ratios and the
// bandwidth-delay product.
#pragma once

#include <cstdint>

#include "sim/units.hpp"

namespace tfsim::core {

/// Degradation = degraded / baseline (completion times), or
/// baseline / degraded for rate metrics -- both >= 1 when things got worse.
inline double degradation_from_times(sim::Time degraded, sim::Time baseline) {
  if (baseline == 0) return 0.0;
  return static_cast<double>(degraded) / static_cast<double>(baseline);
}

inline double degradation_from_rates(double baseline_rate, double degraded_rate) {
  if (degraded_rate <= 0.0) return 0.0;
  return baseline_rate / degraded_rate;
}

/// Bandwidth-delay product in kilobytes.  The paper measures ~16.5 kB,
/// constant across injected delays (Fig. 3).
inline double bdp_kb(double bandwidth_gbps, double latency_us) {
  // GB/s x us = kB.
  return bandwidth_gbps * latency_us;
}

}  // namespace tfsim::core
