#include "core/session.hpp"

#include <memory>

namespace tfsim::core {

Session::Session(const SessionConfig& cfg) : cfg_(cfg) {
  testbed_ = std::make_unique<node::Testbed>(cfg_.testbed);
  if (cfg_.dist_kind.has_value()) {
    testbed_->borrower().nic().set_distribution_injector(
        std::make_unique<net::LatencyDistribution>(*cfg_.dist_kind,
                                                   cfg_.dist_mean,
                                                   cfg_.dist_seed));
  } else {
    testbed_->set_period(cfg_.period);
  }
  attached_ = testbed_->attach_remote();
  if (cfg_.migration.has_value()) {
    testbed_->borrower().enable_migration(*cfg_.migration);
  }
}

sim::Time Session::injector_interval() const {
  const auto& inj =
      const_cast<Session*>(this)->testbed_->borrower().nic().injector();
  return inj.mode() == nic::DelayInjector::Mode::kPeriodGate ? inj.interval()
                                                             : 0;
}

workloads::StreamResult Session::run_stream(const workloads::StreamConfig& cfg) {
  workloads::StreamConfig c = cfg;
  c.placement = cfg_.placement;
  workloads::Stream stream(testbed_->borrower(), c);
  return stream.run();
}

workloads::g500::BfsResult Session::run_bfs(
    const workloads::g500::Graph500Config& cfg,
    workloads::g500::CsrGraph graph, std::uint32_t root) {
  workloads::g500::Graph500Config c = cfg;
  c.placement = cfg_.placement;
  workloads::g500::Graph500 g(testbed_->borrower(), c, std::move(graph));
  return g.run_bfs(root);
}

workloads::g500::SsspResult Session::run_sssp(
    const workloads::g500::Graph500Config& cfg,
    workloads::g500::CsrGraph graph, std::uint32_t root) {
  workloads::g500::Graph500Config c = cfg;
  c.placement = cfg_.placement;
  workloads::g500::Graph500 g(testbed_->borrower(), c, std::move(graph));
  return g.run_sssp(root);
}

workloads::g500::JobResult Session::run_bfs_job(
    const workloads::g500::Graph500Config& cfg,
    const workloads::g500::EdgeList& edges, std::uint32_t root) {
  workloads::g500::Graph500Config c = cfg;
  c.placement = cfg_.placement;
  workloads::g500::Graph500 g(testbed_->borrower(), c, edges);
  return g.run_bfs_job(root);
}

workloads::g500::JobResult Session::run_sssp_job(
    const workloads::g500::Graph500Config& cfg,
    const workloads::g500::EdgeList& edges, std::uint32_t root) {
  workloads::g500::Graph500Config c = cfg;
  c.placement = cfg_.placement;
  workloads::g500::Graph500 g(testbed_->borrower(), c, edges);
  return g.run_sssp_job(root);
}

workloads::kv::MemtierResult Session::run_memtier(
    const workloads::kv::KvStoreConfig& store_cfg,
    const workloads::kv::MemtierConfig& load_cfg) {
  workloads::kv::KvStoreConfig sc = store_cfg;
  sc.placement = cfg_.placement;
  workloads::kv::KvStore store(testbed_->borrower(), sc);
  workloads::kv::Memtier memtier(testbed_->borrower(), store, load_cfg);
  return memtier.run();
}

const nic::DisaggNic& Session::nic() const {
  return const_cast<Session*>(this)->testbed_->borrower().nic();
}

}  // namespace tfsim::core
