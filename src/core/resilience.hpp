// Resilience assessment (paper §IV-C): classify system health under a given
// injection PERIOD by probing the attach handshake and, when attached,
// measuring STREAM's effective memory access time.
//
// The single-PERIOD probe generalizes to a (period x loss x flap) fault
// matrix: each point builds a fresh Cluster with the fault layer configured,
// drives a fixed closed-loop access pattern through the borrower NIC, and
// classifies the outcome.  Faults widen the health spectrum beyond the
// paper's healthy/degraded/device-lost: a run can complete only thanks to
// DL replay (recovering) or survive by amputating a dead lender (detached).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/session.hpp"
#include "net/fault.hpp"
#include "scenario/scenario.hpp"
#include "workloads/stream/stream.hpp"

namespace tfsim::core {

enum class HealthClass {
  kHealthy,     ///< latency within normal datacenter-network range
  kRecovering,  ///< completed within SLA, but only via DL retransmissions
  kDegraded,    ///< runs to completion with severe slowdown (SLA risk)
  kDetached,    ///< survived by detaching a lender (capacity loss)
  kDeviceLost,  ///< FPGA not detected; memory cannot attach (system failure)
};

std::string to_string(HealthClass h);
/// Inverse of to_string; throws std::invalid_argument on unknown names.
HealthClass parse_health_class(const std::string& name);

struct ResilienceProbe {
  std::uint64_t period = 0;
  bool attached = false;
  double stream_latency_us = 0.0;   ///< 0 when not attached
  double stream_bandwidth_gbps = 0.0;
  HealthClass health = HealthClass::kHealthy;
};

struct ResilienceOptions {
  /// Latency above this classifies the run as degraded (SLA threshold).
  double degraded_threshold_us = 100.0;
  workloads::StreamConfig stream;
  node::TestbedSpec testbed;
};

/// Probe one PERIOD on a fresh testbed.
ResilienceProbe assess_resilience(std::uint64_t period,
                                  const ResilienceOptions& opts);

// --- fault matrix ----------------------------------------------------------

/// One point of the (period x loss x flap-schedule) matrix.
struct FaultPoint {
  std::uint64_t period = 1;
  double loss_rate = 0.0;
  std::uint32_t flap_schedule = 0;  ///< index into FaultMatrixOptions
};

struct FaultProbe {
  FaultPoint point;
  bool attached = false;
  std::uint64_t completed = 0;  ///< accesses that finished (incl. retried)
  std::uint64_t failed = 0;     ///< accesses surfaced as fail responses
  double avg_latency_us = 0.0;  ///< mean end-to-end latency of completions
  std::uint64_t retries = 0;
  std::uint64_t abandoned = 0;
  std::uint64_t crc_drops = 0;
  std::uint64_t frames_lost = 0;
  std::uint64_t recovered = 0;
  std::uint32_t detached_lenders = 0;
  HealthClass health = HealthClass::kHealthy;
};

struct FaultMatrixOptions {
  /// Base testbed; per-point faults overwrite `scenario.faults.link` (an
  /// embedded kill_lender is kept and applies at every point).
  scenario::ScenarioSpec scenario = scenario::paper_two_node();
  std::vector<std::uint64_t> periods = {1, 100, 1000};
  std::vector<double> loss_rates = {0.0, 1e-4, 1e-2};
  /// Flap schedules; index 0 should stay empty so the matrix has a
  /// flap-free column.  Every schedule is applied to every link.
  std::vector<std::vector<net::FlapSpec>> flap_schedules = {{}};
  double corrupt_rate = 0.0;  ///< held constant across the matrix
  std::uint64_t seed = 1;
  /// Closed-loop accesses driven through the borrower NIC per point.
  std::uint32_t accesses = 2000;
  double degraded_threshold_us = 100.0;
};

/// Classification precedence: device-lost > detached > degraded (over-SLA
/// latency or surfaced failures) > recovering (needed retries) > healthy.
HealthClass classify(const FaultProbe& probe, double degraded_threshold_us);

/// Probe one matrix point on a fresh Cluster.  Asserts the protocol books
/// balance at quiesce (every credit and tag reclaimed) -- a lost frame may
/// cost latency or an abandonment, never a hung transaction.
FaultProbe assess_fault_point(const FaultPoint& point,
                              const FaultMatrixOptions& opts);

/// The full matrix in row-major (period, loss, flap) order, fanned out over
/// `jobs` workers (TFSIM_JOBS default).  Results are byte-identical to the
/// serial loop: each point owns its Cluster and its fault streams.
std::vector<FaultProbe> assess_fault_matrix(const FaultMatrixOptions& opts);
std::vector<FaultProbe> assess_fault_matrix(const FaultMatrixOptions& opts,
                                            unsigned jobs);

}  // namespace tfsim::core
