// Resilience assessment (paper §IV-C): classify system health under a given
// injection PERIOD by probing the attach handshake and, when attached,
// measuring STREAM's effective memory access time.
#pragma once

#include <cstdint>
#include <string>

#include "core/session.hpp"
#include "workloads/stream/stream.hpp"

namespace tfsim::core {

enum class HealthClass {
  kHealthy,     ///< latency within normal datacenter-network range
  kDegraded,    ///< runs to completion with severe slowdown (SLA risk)
  kDeviceLost,  ///< FPGA not detected; memory cannot attach (system failure)
};

std::string to_string(HealthClass h);

struct ResilienceProbe {
  std::uint64_t period = 0;
  bool attached = false;
  double stream_latency_us = 0.0;   ///< 0 when not attached
  double stream_bandwidth_gbps = 0.0;
  HealthClass health = HealthClass::kHealthy;
};

struct ResilienceOptions {
  /// Latency above this classifies the run as degraded (SLA threshold).
  double degraded_threshold_us = 100.0;
  workloads::StreamConfig stream;
  node::TestbedSpec testbed;
};

/// Probe one PERIOD on a fresh testbed.
ResilienceProbe assess_resilience(std::uint64_t period,
                                  const ResilienceOptions& opts);

}  // namespace tfsim::core
