// Aligned-table reporting for benches and examples: prints the same rows
// the paper's tables/figures contain, and can mirror them to CSV.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace tfsim::core {

class Table {
 public:
  Table(std::string title, std::vector<std::string> columns);

  Table& row(std::vector<std::string> cells);

  /// Format helpers.
  static std::string num(double v, int precision = 3);
  static std::string ratio(double v);  ///< "1.01x" style

  void print(std::ostream& os) const;
  /// Also print to stdout.
  void print() const;

  /// Write rows (with header) to a CSV file; returns false on I/O error.
  bool to_csv(const std::string& path) const;

  std::size_t rows() const { return rows_.size(); }
  const std::vector<std::vector<std::string>>& data() const { return rows_; }
  const std::vector<std::string>& columns() const { return columns_; }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tfsim::core
