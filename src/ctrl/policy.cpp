#include "ctrl/policy.hpp"

#include <algorithm>
#include <stdexcept>

namespace tfsim::ctrl {

std::optional<std::uint32_t> FirstFitPolicy::pick(
    const NodeRegistry& /*registry*/, std::uint32_t /*borrower*/,
    std::uint64_t /*size*/, const std::vector<std::uint32_t>& candidates) {
  if (candidates.empty()) return std::nullopt;
  return *std::min_element(candidates.begin(), candidates.end());
}

std::optional<std::uint32_t> MostFreePolicy::pick(
    const NodeRegistry& registry, std::uint32_t /*borrower*/,
    std::uint64_t /*size*/, const std::vector<std::uint32_t>& candidates) {
  if (candidates.empty()) return std::nullopt;
  return *std::max_element(
      candidates.begin(), candidates.end(),
      [&](std::uint32_t a, std::uint32_t b) {
        return registry.node(a).lendable(safety_margin_) <
               registry.node(b).lendable(safety_margin_);
      });
}

std::optional<std::uint32_t> IdlePreferringPolicy::pick(
    const NodeRegistry& registry, std::uint32_t /*borrower*/,
    std::uint64_t /*size*/, const std::vector<std::uint32_t>& candidates) {
  if (candidates.empty()) return std::nullopt;
  return *std::min_element(candidates.begin(), candidates.end(),
                           [&](std::uint32_t a, std::uint32_t b) {
                             return registry.node(a).running_apps <
                                    registry.node(b).running_apps;
                           });
}

std::optional<std::uint32_t> ContentionAwarePolicy::pick(
    const NodeRegistry& registry, std::uint32_t /*borrower*/,
    std::uint64_t /*size*/, const std::vector<std::uint32_t>& candidates) {
  std::vector<std::uint32_t> viable;
  for (auto id : candidates) {
    // The paper's insight: running_apps is irrelevant; only a saturated
    // memory bus would make lender-side contention visible to the borrower.
    if (registry.node(id).memory_bus_utilization <= bus_cap_) {
      viable.push_back(id);
    }
  }
  if (viable.empty()) return std::nullopt;
  return *std::max_element(
      viable.begin(), viable.end(), [&](std::uint32_t a, std::uint32_t b) {
        return registry.node(a).lendable(safety_margin_) <
               registry.node(b).lendable(safety_margin_);
      });
}

std::optional<std::uint32_t> SloAwarePolicy::pick(
    const NodeRegistry& registry, std::uint32_t /*borrower*/,
    std::uint64_t /*size*/, const std::vector<std::uint32_t>& candidates) {
  std::optional<std::uint32_t> best;
  double best_score = 0.0;
  for (auto id : candidates) {
    const NodeInfo& n = registry.node(id);
    const double u = std::min(n.memory_bus_utilization, bus_cap_);
    const double lent_fraction =
        n.total_memory
            ? static_cast<double>(n.lent_out) / static_cast<double>(n.total_memory)
            : 0.0;
    const double score = (1.0 + lent_fraction) / (1.0 - u);
    // Strict < keeps the first (lowest-id) node on ties: candidates arrive
    // in id order from the registry, so placement is deterministic.
    if (!best.has_value() || score < best_score) {
      best = id;
      best_score = score;
    }
  }
  return best;
}

std::unique_ptr<AllocationPolicy> make_policy(const std::string& name) {
  if (name == "first-fit") return std::make_unique<FirstFitPolicy>();
  if (name == "most-free") return std::make_unique<MostFreePolicy>();
  if (name == "idle-preferring") return std::make_unique<IdlePreferringPolicy>();
  if (name == "contention-aware") return std::make_unique<ContentionAwarePolicy>();
  if (name == "slo-aware") return std::make_unique<SloAwarePolicy>();
  throw std::invalid_argument("unknown allocation policy: " + name);
}

}  // namespace tfsim::ctrl
