// Control-plane node registry: roles, capacities, runtime load signals.
//
// The control plane designates each datacenter node a borrower or lender
// (dynamically, from real-time memory availability and demand) and sizes
// reservations at lenders (paper §II-A).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace tfsim::ctrl {

enum class Role { kUnassigned, kBorrower, kLender };

std::string to_string(Role role);

struct NodeInfo {
  std::uint32_t id = 0;
  std::string name;
  std::uint64_t total_memory = 0;    ///< bytes of installed DRAM
  std::uint64_t local_used = 0;      ///< consumed by local applications
  std::uint64_t lent_out = 0;        ///< reserved for remote borrowers
  std::uint32_t running_apps = 0;    ///< co-located applications (contention signal)
  double memory_bus_utilization = 0.0;  ///< [0,1], runtime telemetry
  Role role = Role::kUnassigned;

  /// Memory a lender could still hand out (keeps a safety margin for the
  /// host OS and local growth).
  std::uint64_t lendable(std::uint64_t safety_margin) const {
    const std::uint64_t committed = local_used + lent_out + safety_margin;
    return committed >= total_memory ? 0 : total_memory - committed;
  }
};

class NodeRegistry {
 public:
  std::uint32_t add_node(const std::string& name, std::uint64_t total_memory);

  NodeInfo& node(std::uint32_t id);
  const NodeInfo& node(std::uint32_t id) const;
  const std::vector<NodeInfo>& nodes() const { return nodes_; }

  void set_role(std::uint32_t id, Role role);

  /// Runtime telemetry update from the node agent.
  void report_load(std::uint32_t id, std::uint64_t local_used,
                   std::uint32_t running_apps, double bus_utilization);

  /// Lender candidates with at least `size` lendable bytes.
  std::vector<std::uint32_t> lender_candidates(std::uint64_t size,
                                               std::uint64_t safety_margin) const;

 private:
  std::vector<NodeInfo> nodes_;
};

}  // namespace tfsim::ctrl
