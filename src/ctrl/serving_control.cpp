#include "ctrl/serving_control.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/log.hpp"

namespace tfsim::ctrl {

bool AdmissionController::can_admit(const NodeRegistry& registry,
                                    std::uint32_t lender, double rate_rps,
                                    std::uint64_t bytes) const {
  const NodeInfo& n = registry.node(lender);
  if (n.role == Role::kBorrower) return false;
  if (n.lendable(cfg_.lender_safety_margin) < bytes) return false;
  return committed_rps(lender) + rate_rps <= cfg_.lender_capacity_rps;
}

void AdmissionController::commit(std::uint32_t lender, double rate_rps) {
  committed_[lender] += rate_rps;
}

void AdmissionController::rescind(std::uint32_t lender) {
  committed_.erase(lender);
}

double AdmissionController::committed_rps(std::uint32_t lender) const {
  const auto it = committed_.find(lender);
  return it == committed_.end() ? 0.0 : it->second;
}

double AdmissionController::headroom_rps(std::uint32_t lender) const {
  return std::max(0.0, cfg_.lender_capacity_rps - committed_rps(lender));
}

// ---------------------------------------------------------------------------

ServingController::ServingController(NodeRegistry& registry,
                                     std::unique_ptr<AllocationPolicy> policy,
                                     ServingConfig cfg)
    : registry_(registry),
      policy_(std::move(policy)),
      cfg_(cfg),
      admission_(cfg.admission) {
  if (!policy_) throw std::invalid_argument("ServingController: null policy");
}

std::vector<std::uint32_t> ServingController::ranked_candidates(
    const TenantSpec& spec, std::uint32_t borrower,
    const std::vector<std::uint32_t>& exclude) {
  std::vector<std::uint32_t> pool;
  for (auto id : registry_.lender_candidates(
           spec.bytes, admission_.config().lender_safety_margin)) {
    if (id == borrower) continue;
    if (std::find(exclude.begin(), exclude.end(), id) != exclude.end())
      continue;
    if (!admission_.can_admit(registry_, id, spec.rate_rps, spec.bytes))
      continue;
    pool.push_back(id);
  }
  // Rank by repeatedly asking the policy for its best pick and removing it:
  // the same ordering logic the primary placement used, so a failover
  // target is exactly "where the tenant would have been placed next".
  std::vector<std::uint32_t> ranked;
  while (!pool.empty()) {
    const auto pick = policy_->pick(registry_, borrower, spec.bytes, pool);
    if (!pick.has_value()) break;
    ranked.push_back(*pick);
    pool.erase(std::remove(pool.begin(), pool.end(), *pick), pool.end());
  }
  return ranked;
}

std::optional<Placement> ServingController::admit_tenant(
    const TenantSpec& spec, std::uint32_t borrower) {
  const auto ranked = ranked_candidates(spec, borrower, {});
  if (ranked.empty()) {
    TFSIM_LOG(Info) << "admit_tenant(" << spec.name
                    << "): rejected, no lender with credit headroom";
    return std::nullopt;
  }
  Placement p;
  p.tenant = spec.name;
  p.primary = ranked.front();
  const std::size_t depth =
      std::min<std::size_t>(cfg_.failover_depth, ranked.size() - 1);
  p.failover.assign(ranked.begin() + 1, ranked.begin() + 1 + depth);
  admission_.commit(p.primary, spec.rate_rps);
  registry_.node(p.primary).lent_out += spec.bytes;
  placements_.push_back(p);
  return p;
}

void ServingController::record_failover(const TenantSpec& spec,
                                        std::uint32_t dead,
                                        std::uint32_t replacement) {
  admission_.rescind(dead);
  admission_.commit(replacement, spec.rate_rps);
  NodeInfo& dn = registry_.node(dead);
  dn.lent_out -= std::min<std::uint64_t>(dn.lent_out, spec.bytes);
  registry_.node(replacement).lent_out += spec.bytes;
  for (auto& p : placements_) {
    if (p.tenant == spec.name && p.primary == dead) {
      p.primary = replacement;
      p.failover.erase(
          std::remove(p.failover.begin(), p.failover.end(), replacement),
          p.failover.end());
    }
  }
}

}  // namespace tfsim::ctrl
