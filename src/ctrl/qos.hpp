// Credit-based QoS arbitration between tenants sharing a lender.
//
// A lender has a finite serving capacity (requests per refill window).  Each
// tenant is assigned an integer weight; every window the capacity is divided
// into per-tenant credits proportional to weight, and a request is admitted
// only if its tenant still holds a credit.  Under saturation each tenant
// therefore completes work in proportion to its weight — the property the
// QoS tests pin at ±5%.
//
// Determinism contract: refills happen lazily at try_admit() time on exact
// integer window boundaries, so the admit/reject sequence is a pure function
// of the (tenant, time) call sequence — no periodic events, no wall-clock.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/units.hpp"

namespace tfsim::ctrl {

struct QosConfig {
  sim::Time window = sim::from_us(100.0);  ///< credit refill period
  std::uint64_t capacity_per_window = 0;   ///< admitted requests per window
};

class CreditQos {
 public:
  explicit CreditQos(QosConfig cfg);

  struct TenantStats {
    std::string name;
    std::uint32_t weight = 1;
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
  };

  /// Register a tenant; returns its index.  Weights are fixed at
  /// registration (integer, >= 1).
  std::uint32_t add_tenant(const std::string& name, std::uint32_t weight);

  /// Admit one request for `tenant` at simulated time `now`.  False means
  /// the tenant's credits for the current window are exhausted; the caller
  /// must refuse the request (it never reaches the lender's DRAM).
  bool try_admit(std::uint32_t tenant, sim::Time now);

  const std::vector<TenantStats>& tenants() const { return stats_; }
  std::uint64_t credits(std::uint32_t tenant) const {
    return credits_.at(tenant);
  }

 private:
  void refill(sim::Time now);

  QosConfig cfg_;
  std::vector<TenantStats> stats_;
  std::vector<std::uint64_t> credits_;
  std::uint64_t next_window_ = 0;  ///< first window index not yet refilled
};

}  // namespace tfsim::ctrl
