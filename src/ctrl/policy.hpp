// Lender-selection policies.
//
// The paper's contention results (Fig. 6/7) motivate contention-aware
// allocation: because lender-side memory contention is insignificant
// relative to the network, a busy lender and an idle lender are equally
// viable.  We provide the naive policies plus the contention-aware one so
// the examples can compare their decisions.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ctrl/registry.hpp"

namespace tfsim::ctrl {

class AllocationPolicy {
 public:
  virtual ~AllocationPolicy() = default;

  /// Pick a lender from `candidates` (all have enough lendable memory).
  /// nullopt if the policy rejects every candidate.
  virtual std::optional<std::uint32_t> pick(
      const NodeRegistry& registry, std::uint32_t borrower,
      std::uint64_t size, const std::vector<std::uint32_t>& candidates) = 0;

  virtual std::string name() const = 0;
};

/// First candidate in id order.
class FirstFitPolicy final : public AllocationPolicy {
 public:
  std::optional<std::uint32_t> pick(
      const NodeRegistry& registry, std::uint32_t borrower, std::uint64_t size,
      const std::vector<std::uint32_t>& candidates) override;
  std::string name() const override { return "first-fit"; }
};

/// Most lendable memory remaining (load balancing by capacity).
class MostFreePolicy final : public AllocationPolicy {
 public:
  explicit MostFreePolicy(std::uint64_t safety_margin = 0)
      : safety_margin_(safety_margin) {}
  std::optional<std::uint32_t> pick(
      const NodeRegistry& registry, std::uint32_t borrower, std::uint64_t size,
      const std::vector<std::uint32_t>& candidates) override;
  std::string name() const override { return "most-free"; }

 private:
  std::uint64_t safety_margin_;
};

/// Avoids lenders whose *local applications* are busy: picks the candidate
/// with the fewest running apps (what a designer would do before reading
/// the paper's Fig. 7).
class IdlePreferringPolicy final : public AllocationPolicy {
 public:
  std::optional<std::uint32_t> pick(
      const NodeRegistry& registry, std::uint32_t borrower, std::uint64_t size,
      const std::vector<std::uint32_t>& candidates) override;
  std::string name() const override { return "idle-preferring"; }
};

/// Contention-aware per the paper's insight: lender-side app count does NOT
/// disqualify a lender (the network is the bottleneck); only saturated
/// memory-bus utilization does.  Among the rest, balance by capacity.
class ContentionAwarePolicy final : public AllocationPolicy {
 public:
  explicit ContentionAwarePolicy(double bus_utilization_cap = 0.9,
                                 std::uint64_t safety_margin = 0)
      : bus_cap_(bus_utilization_cap), safety_margin_(safety_margin) {}
  std::optional<std::uint32_t> pick(
      const NodeRegistry& registry, std::uint32_t borrower, std::uint64_t size,
      const std::vector<std::uint32_t>& candidates) override;
  std::string name() const override { return "contention-aware"; }

 private:
  double bus_cap_;
  std::uint64_t safety_margin_;
};

/// SLO-aware placement for the serving layer: minimizes a tail-latency
/// proxy instead of maximizing free capacity.  The proxy combines the
/// lender's memory-bus utilization (an M/M/1-style 1/(1-u) queueing
/// amplification — the only lender-side signal the paper found to matter)
/// with its lent-out fraction (fan-in: more borrowers sharing the lender's
/// NIC means more cross-traffic on its egress).  Ties break to the lowest
/// node id so placement is deterministic.
class SloAwarePolicy final : public AllocationPolicy {
 public:
  explicit SloAwarePolicy(double bus_utilization_cap = 0.95)
      : bus_cap_(bus_utilization_cap) {}
  std::optional<std::uint32_t> pick(
      const NodeRegistry& registry, std::uint32_t borrower, std::uint64_t size,
      const std::vector<std::uint32_t>& candidates) override;
  std::string name() const override { return "slo-aware"; }

 private:
  double bus_cap_;
};

std::unique_ptr<AllocationPolicy> make_policy(const std::string& name);

}  // namespace tfsim::ctrl
