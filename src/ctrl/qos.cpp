#include "ctrl/qos.hpp"

#include <stdexcept>

namespace tfsim::ctrl {

CreditQos::CreditQos(QosConfig cfg) : cfg_(cfg) {
  if (cfg_.window == 0) {
    throw std::invalid_argument("CreditQos: window must be > 0");
  }
}

std::uint32_t CreditQos::add_tenant(const std::string& name,
                                    std::uint32_t weight) {
  if (weight == 0) {
    throw std::invalid_argument("CreditQos: tenant weight must be >= 1");
  }
  TenantStats t;
  t.name = name;
  t.weight = weight;
  stats_.push_back(t);
  credits_.push_back(0);
  // Force a refill so the new tenant shares the very next window cleanly.
  next_window_ = 0;
  for (auto& c : credits_) c = 0;
  return static_cast<std::uint32_t>(stats_.size() - 1);
}

void CreditQos::refill(sim::Time now) {
  const std::uint64_t w = now / cfg_.window;
  if (w < next_window_) return;
  // Credits do not roll over: each window is a fresh weighted share, so a
  // tenant idle in one window cannot starve the others later.
  std::uint64_t weight_sum = 0;
  for (const auto& t : stats_) weight_sum += t.weight;
  if (weight_sum == 0) return;
  std::uint64_t handed = 0;
  for (std::size_t i = 0; i < stats_.size(); ++i) {
    credits_[i] = cfg_.capacity_per_window * stats_[i].weight / weight_sum;
    handed += credits_[i];
  }
  // Deterministic remainder distribution: one extra credit each, in tenant
  // index order, until the window capacity is fully handed out.
  std::uint64_t leftover = cfg_.capacity_per_window - handed;
  for (std::size_t i = 0; leftover > 0 && i < credits_.size(); ++i) {
    ++credits_[i];
    --leftover;
  }
  next_window_ = w + 1;
}

bool CreditQos::try_admit(std::uint32_t tenant, sim::Time now) {
  refill(now);
  auto& t = stats_.at(tenant);
  if (credits_.at(tenant) == 0) {
    ++t.rejected;
    return false;
  }
  --credits_[tenant];
  ++t.admitted;
  return true;
}

}  // namespace tfsim::ctrl
