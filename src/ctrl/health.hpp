// Online gray-failure detection from the borrower's own observations.
//
// A gray failure is a component that still answers but answers badly: a
// lender whose service latency quietly inflated 8x, a spine whose port
// brownout stretches every frame.  Timeout-driven failover (nic/replay.hpp,
// core/serving.cpp) only reacts once requests *die*; by then the retry
// budget is half-spent and the p99 window has already blown out.  The
// HealthDetector closes that gap: it watches the completion latencies and
// timeout events one source already observes, maintains an EWMA health
// score against a frozen healthy baseline, and flags the target sick after
// a confirmation run of bad samples -- early enough for the control layer
// to re-stripe or migrate before the timeout machinery engages.
//
// Determinism contract (simlint R1/R4): the detector is pure state fed by
// the observation sequence -- no wall clock, no RNG, no floating point that
// depends on call interleaving.  Each source owns one detector per target
// inside its own PDES domain, so serial and N-worker runs see byte-identical
// verdict sequences.
//
// Score model:
//   latency_score = ewma_latency / baseline   (baseline frozen after warmup)
//   timeout_score = timeout_weight * ewma_timeout_indicator
//   score = latency_score + timeout_score
// A sample is "bad" when score > latency_threshold; `confirm` consecutive
// bad samples => sick.  The two components are exposed separately so the
// reaction policy can distinguish a dead path (timeout-dominated: re-stripe
// around it) from a slow server (latency-dominated: migrate off it).
#pragma once

#include <cstdint>

#include "sim/units.hpp"

namespace tfsim::ctrl {

struct HealthConfig {
  /// EWMA smoothing factor for both the latency and timeout streams.
  double alpha = 0.3;
  /// Sick when the combined score exceeds this (score 1.0 == exactly at the
  /// healthy baseline, so 3.0 means "3x baseline latency or equivalent").
  double latency_threshold = 3.0;
  /// Weight of the timeout-indicator EWMA in the combined score.  With 10.0
  /// and alpha 0.3, three consecutive timeouts alone push the score past a
  /// threshold of 3.0 -- one observation before the serving failover walk's
  /// 4-timeout budget, which is the point of the detector.
  double timeout_weight = 10.0;
  /// Completions folded into the baseline before it freezes.  Until then the
  /// detector never reports sick (it is still learning what healthy means).
  std::uint32_t warmup = 16;
  /// Consecutive over-threshold samples required to report sick; absorbs a
  /// single stray slow completion without tripping.
  std::uint32_t confirm = 3;

  friend bool operator==(const HealthConfig&, const HealthConfig&) = default;
};

/// Per-target health tracker.  Feed it every completion latency and every
/// timeout the source observes for that target; poll sick() after each.
class HealthDetector {
 public:
  explicit HealthDetector(const HealthConfig& cfg);

  /// A request against the target completed with round-trip latency `us`.
  void observe_latency(double us);
  /// A request against the target timed out (no completion to measure).
  void observe_timeout();

  /// True once `confirm` consecutive observations scored over threshold
  /// (never during warmup).  Latches until reset()/soft_reset().
  bool sick() const { return sick_; }
  /// True when the sick verdict is driven more by timeouts than latency --
  /// the path-is-dead signature, as opposed to the server-is-slow one.
  bool timeout_dominated() const { return timeout_score() > latency_score(); }

  double latency_score() const;
  double timeout_score() const { return cfg_.timeout_weight * ewma_timeout_; }
  double score() const { return latency_score() + timeout_score(); }
  /// Frozen healthy baseline in us; 0.0 until warmup completes.
  double baseline_us() const { return warmed_up() ? baseline_ : 0.0; }
  bool warmed_up() const { return samples_ >= cfg_.warmup; }
  std::uint64_t observations() const { return observations_; }

  /// Clear the sick latch and the EWMA state but KEEP the frozen baseline:
  /// used after a re-stripe, where the target is the same lender reached
  /// over a different path and the old healthy baseline still applies.
  void soft_reset();
  /// Forget everything including the baseline: used after migrating to a
  /// different lender, whose healthy latency must be re-learned.
  void reset();

  const HealthConfig& config() const { return cfg_; }

 private:
  void score_sample();

  HealthConfig cfg_;
  double baseline_ = 0.0;       ///< mean of the first `warmup` latencies
  double ewma_latency_ = 0.0;   ///< smoothed completion latency (us)
  double ewma_timeout_ = 0.0;   ///< smoothed timeout indicator in [0, 1]
  std::uint32_t samples_ = 0;   ///< completions folded into the baseline
  std::uint32_t bad_streak_ = 0;
  std::uint64_t observations_ = 0;
  bool sick_ = false;
};

}  // namespace tfsim::ctrl
