#include "ctrl/registry.hpp"

#include <stdexcept>

namespace tfsim::ctrl {

std::string to_string(Role role) {
  switch (role) {
    case Role::kUnassigned: return "unassigned";
    case Role::kBorrower: return "borrower";
    case Role::kLender: return "lender";
  }
  return "?";
}

std::uint32_t NodeRegistry::add_node(const std::string& name,
                                     std::uint64_t total_memory) {
  NodeInfo info;
  info.id = static_cast<std::uint32_t>(nodes_.size());
  info.name = name;
  info.total_memory = total_memory;
  nodes_.push_back(std::move(info));
  return nodes_.back().id;
}

NodeInfo& NodeRegistry::node(std::uint32_t id) {
  if (id >= nodes_.size()) throw std::out_of_range("NodeRegistry: bad id");
  return nodes_[id];
}

const NodeInfo& NodeRegistry::node(std::uint32_t id) const {
  if (id >= nodes_.size()) throw std::out_of_range("NodeRegistry: bad id");
  return nodes_[id];
}

void NodeRegistry::set_role(std::uint32_t id, Role role) { node(id).role = role; }

void NodeRegistry::report_load(std::uint32_t id, std::uint64_t local_used,
                               std::uint32_t running_apps,
                               double bus_utilization) {
  NodeInfo& n = node(id);
  n.local_used = local_used;
  n.running_apps = running_apps;
  n.memory_bus_utilization = bus_utilization;
}

std::vector<std::uint32_t> NodeRegistry::lender_candidates(
    std::uint64_t size, std::uint64_t safety_margin) const {
  std::vector<std::uint32_t> out;
  for (const auto& n : nodes_) {
    if (n.role == Role::kLender && n.lendable(safety_margin) >= size) {
      out.push_back(n.id);
    }
  }
  return out;
}

}  // namespace tfsim::ctrl
