// The control plane: reservations and hot-plug (libthymesisflow's job).
//
// reserve() picks a lender via the configured policy and books the memory;
// attach() programs the borrower NIC's address translation and publishes the
// region in the borrower's memory map (hot-plug); detach() reverses both.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ctrl/policy.hpp"
#include "ctrl/registry.hpp"
#include "mem/address.hpp"
#include "nic/nic.hpp"

namespace tfsim::ctrl {

struct Reservation {
  std::uint64_t id = 0;
  std::uint32_t borrower = 0;
  std::uint32_t lender = 0;
  std::uint64_t size = 0;
  mem::Addr lender_base = 0;  ///< offset in the lender's donated space
  std::string name;
  bool attached = false;
};

struct ControlPlaneConfig {
  /// Reserved headroom a lender keeps for its own OS/applications.
  std::uint64_t lender_safety_margin = 4ULL * 1024 * 1024 * 1024;
  /// Borrower physical window where hot-plugged memory appears.
  mem::Addr hotplug_base = 0x2000'0000'0000ULL;
};

class ControlPlane {
 public:
  ControlPlane(NodeRegistry& registry, std::unique_ptr<AllocationPolicy> policy,
               ControlPlaneConfig cfg = ControlPlaneConfig());

  /// Book `size` bytes for `borrower` at a policy-chosen lender.
  std::optional<Reservation> reserve(std::uint32_t borrower, std::uint64_t size,
                                     const std::string& name);

  /// Hot-plug a reservation into the borrower: programs the NIC translator
  /// and the memory map; runs the FPGA attach handshake.  Returns the
  /// borrower physical base on success, nullopt if the device times out
  /// (Fig. 4 failure mode) or the reservation is unknown.
  std::optional<mem::Addr> attach(std::uint64_t reservation_id,
                                  nic::DisaggNic& borrower_nic,
                                  mem::MemoryMap& borrower_map);

  /// Hot-unplug + release the booking.
  bool release(std::uint64_t reservation_id, nic::DisaggNic* borrower_nic,
               mem::MemoryMap* borrower_map);

  /// Reactive re-placement after a lender died (kill_lender or a degraded
  /// link declared it unreachable): re-books the reservation at a
  /// policy-chosen surviving lender (never `exclude`), and — when attached
  /// — atomically retargets the borrower NIC's translation segment and the
  /// memory-map region to the new lender at the *same* borrower physical
  /// base, so in-flight application pointers stay valid.  Returns the new
  /// lender id, nullopt when no survivor has room.
  std::optional<std::uint32_t> migrate(std::uint64_t reservation_id,
                                       std::uint32_t exclude,
                                       nic::DisaggNic* borrower_nic,
                                       mem::MemoryMap* borrower_map);

  const std::vector<Reservation>& reservations() const { return reservations_; }
  const Reservation* find(std::uint64_t reservation_id) const;
  const AllocationPolicy& policy() const { return *policy_; }

 private:
  NodeRegistry& registry_;
  std::unique_ptr<AllocationPolicy> policy_;
  ControlPlaneConfig cfg_;
  std::vector<Reservation> reservations_;
  std::uint64_t next_id_ = 1;
  mem::Addr next_hotplug_ = 0;
};

}  // namespace tfsim::ctrl
