// Serving-oriented control plane: tenant admission on lender credit
// headroom, SLO-aware placement plans, and reactive re-placement when a
// lender dies mid-run.
//
// The data plane under PDES cannot mutate shared control-plane state from a
// borrower's domain (that would race across worker threads), so placement
// decisions are made *up front*: admit_tenant() returns a Placement with a
// primary lender plus an ordered failover chain computed by the same
// allocation policy.  When the fault layer kills a lender, each source
// fails over along its precomputed chain using only domain-local state —
// deterministic under any worker count — while the registry bookkeeping is
// reconciled by the (serial) control plane via ControlPlane::migrate or
// ServingController::record_failover.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ctrl/policy.hpp"
#include "ctrl/registry.hpp"

namespace tfsim::ctrl {

/// A tenant asking to be served: its reservation size and its offered rate.
struct TenantSpec {
  std::string name;
  std::uint32_t weight = 1;    ///< QoS weight (see ctrl/qos.hpp)
  double rate_rps = 0.0;       ///< aggregate offered rate
  std::uint64_t bytes = 0;     ///< memory reserved at the lender
};

/// Result of admission: where the tenant's working set lives, and where its
/// traffic retargets (in order) if lenders die.
struct Placement {
  std::string tenant;
  std::uint32_t primary = 0;
  std::vector<std::uint32_t> failover;  ///< policy-ranked, primary excluded
};

struct AdmissionConfig {
  /// Serving capacity a single lender can sustain, requests/sec.  Tenants
  /// are admitted until the committed rate would exceed it.
  double lender_capacity_rps = 1e6;
  /// Headroom a lender keeps for its own OS (bytes, like ControlPlane).
  std::uint64_t lender_safety_margin = 4ULL * 1024 * 1024 * 1024;
};

/// Deterministic admission control on lender credit headroom: a lender's
/// "credits" are its remaining request-rate capacity and lendable bytes.
/// The same sequence of admit() calls always yields the same accept/reject
/// sequence — there is no load feedback loop, only booked commitments.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig cfg) : cfg_(cfg) {}

  /// True iff `lender` can absorb `rate_rps` more offered load and `bytes`
  /// more reservation.  Does not book — see commit().
  bool can_admit(const NodeRegistry& registry, std::uint32_t lender,
                 double rate_rps, std::uint64_t bytes) const;
  /// Book the commitment (call only after can_admit).
  void commit(std::uint32_t lender, double rate_rps);
  /// Return a dead lender's booked rate so survivors absorb the failover.
  void rescind(std::uint32_t lender);

  double committed_rps(std::uint32_t lender) const;
  double headroom_rps(std::uint32_t lender) const;
  const AdmissionConfig& config() const { return cfg_; }

 private:
  AdmissionConfig cfg_;
  std::map<std::uint32_t, double> committed_;  // ordered: deterministic
};

struct ServingConfig {
  AdmissionConfig admission;
  /// Length of the failover chain computed per tenant (how many lender
  /// deaths a placement survives without re-planning).
  std::uint32_t failover_depth = 2;
};

class ServingController {
 public:
  ServingController(NodeRegistry& registry,
                    std::unique_ptr<AllocationPolicy> policy,
                    ServingConfig cfg);

  /// Admit a tenant on behalf of `borrower`: checks rate and byte headroom,
  /// places via the policy, books the commitment, and computes the failover
  /// chain.  nullopt = deterministic rejection (no viable lender with
  /// enough credit headroom).
  std::optional<Placement> admit_tenant(const TenantSpec& spec,
                                        std::uint32_t borrower);

  /// Reconcile bookkeeping after the data plane failed over away from
  /// `dead`: rescinds the dead lender's booked rate and re-books the
  /// tenant's rate on `replacement`.
  void record_failover(const TenantSpec& spec, std::uint32_t dead,
                       std::uint32_t replacement);

  AdmissionController& admission() { return admission_; }
  const std::vector<Placement>& placements() const { return placements_; }

 private:
  /// Policy-ranked lender order for `spec`, best first, excluding
  /// `exclude` and the borrower itself; only lenders passing admission.
  std::vector<std::uint32_t> ranked_candidates(
      const TenantSpec& spec, std::uint32_t borrower,
      const std::vector<std::uint32_t>& exclude);

  NodeRegistry& registry_;
  std::unique_ptr<AllocationPolicy> policy_;
  ServingConfig cfg_;
  AdmissionController admission_;
  std::vector<Placement> placements_;
};

}  // namespace tfsim::ctrl
