#include "ctrl/health.hpp"

#include <stdexcept>

namespace tfsim::ctrl {

HealthDetector::HealthDetector(const HealthConfig& cfg) : cfg_(cfg) {
  if (cfg_.alpha <= 0.0 || cfg_.alpha > 1.0) {
    throw std::invalid_argument("HealthDetector: alpha must be in (0, 1]");
  }
  if (cfg_.latency_threshold <= 1.0) {
    throw std::invalid_argument(
        "HealthDetector: latency threshold must be > 1 (1.0 is the healthy "
        "baseline itself)");
  }
  if (cfg_.timeout_weight < 0.0) {
    throw std::invalid_argument(
        "HealthDetector: timeout weight must be >= 0");
  }
  if (cfg_.warmup == 0 || cfg_.confirm == 0) {
    throw std::invalid_argument(
        "HealthDetector: warmup and confirm must be >= 1");
  }
}

double HealthDetector::latency_score() const {
  if (!warmed_up() || baseline_ <= 0.0) return 0.0;
  return ewma_latency_ / baseline_;
}

void HealthDetector::observe_latency(double us) {
  if (us < 0.0) {
    throw std::invalid_argument("HealthDetector: negative latency");
  }
  ++observations_;
  if (samples_ < cfg_.warmup) {
    // Running mean until the baseline freezes; the EWMA tracks alongside so
    // the first post-warmup score is already meaningful.
    baseline_ += (us - baseline_) / static_cast<double>(samples_ + 1);
    ++samples_;
    ewma_latency_ = samples_ == 1
                        ? us
                        : ewma_latency_ + cfg_.alpha * (us - ewma_latency_);
    return;
  }
  ewma_latency_ += cfg_.alpha * (us - ewma_latency_);
  ewma_timeout_ += cfg_.alpha * (0.0 - ewma_timeout_);
  score_sample();
}

void HealthDetector::observe_timeout() {
  ++observations_;
  if (samples_ < cfg_.warmup) return;  // still learning; timeouts here are
                                       // the timeout machinery's problem
  ewma_timeout_ += cfg_.alpha * (1.0 - ewma_timeout_);
  score_sample();
}

void HealthDetector::score_sample() {
  if (score() > cfg_.latency_threshold) {
    if (++bad_streak_ >= cfg_.confirm) sick_ = true;
  } else {
    bad_streak_ = 0;
  }
}

void HealthDetector::soft_reset() {
  sick_ = false;
  bad_streak_ = 0;
  ewma_timeout_ = 0.0;
  ewma_latency_ = warmed_up() ? baseline_ : ewma_latency_;
}

void HealthDetector::reset() {
  sick_ = false;
  bad_streak_ = 0;
  ewma_timeout_ = 0.0;
  ewma_latency_ = 0.0;
  baseline_ = 0.0;
  samples_ = 0;
}

}  // namespace tfsim::ctrl
