#include "ctrl/control_plane.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/log.hpp"

namespace tfsim::ctrl {

ControlPlane::ControlPlane(NodeRegistry& registry,
                           std::unique_ptr<AllocationPolicy> policy,
                           ControlPlaneConfig cfg)
    : registry_(registry), policy_(std::move(policy)), cfg_(cfg),
      next_hotplug_(cfg.hotplug_base) {
  if (!policy_) throw std::invalid_argument("ControlPlane: null policy");
}

std::optional<Reservation> ControlPlane::reserve(std::uint32_t borrower,
                                                 std::uint64_t size,
                                                 const std::string& name) {
  if (size == 0) return std::nullopt;
  const auto candidates =
      registry_.lender_candidates(size, cfg_.lender_safety_margin);
  // A node cannot lend to itself.
  std::vector<std::uint32_t> filtered;
  std::copy_if(candidates.begin(), candidates.end(),
               std::back_inserter(filtered),
               [&](std::uint32_t id) { return id != borrower; });
  const auto lender = policy_->pick(registry_, borrower, size, filtered);
  if (!lender.has_value()) {
    TFSIM_LOG(Info) << "reserve(" << name << "): no viable lender";
    return std::nullopt;
  }

  NodeInfo& ln = registry_.node(*lender);
  Reservation r;
  r.id = next_id_++;
  r.borrower = borrower;
  r.lender = *lender;
  r.size = size;
  r.lender_base = ln.lent_out;  // donated space grows linearly
  r.name = name;
  ln.lent_out += size;
  reservations_.push_back(r);
  return r;
}

std::optional<mem::Addr> ControlPlane::attach(std::uint64_t reservation_id,
                                              nic::DisaggNic& borrower_nic,
                                              mem::MemoryMap& borrower_map) {
  auto it = std::find_if(reservations_.begin(), reservations_.end(),
                         [&](const Reservation& r) { return r.id == reservation_id; });
  if (it == reservations_.end() || it->attached) return std::nullopt;

  if (!borrower_nic.attach()) {
    return std::nullopt;  // FPGA detection timeout: memory cannot attach
  }

  const mem::Addr base = next_hotplug_;
  next_hotplug_ += it->size;

  borrower_nic.translator().add_segment(nic::Segment{
      mem::Range{base, it->size}, it->lender_base, it->lender, it->name});
  borrower_map.add_region(mem::Region{mem::Range{base, it->size},
                                      mem::Backing::kRemoteDram, it->lender,
                                      it->name});
  it->attached = true;
  return base;
}

bool ControlPlane::release(std::uint64_t reservation_id,
                           nic::DisaggNic* borrower_nic,
                           mem::MemoryMap* borrower_map) {
  auto it = std::find_if(reservations_.begin(), reservations_.end(),
                         [&](const Reservation& r) { return r.id == reservation_id; });
  if (it == reservations_.end()) return false;
  if (it->attached) {
    if (borrower_nic != nullptr) {
      borrower_nic->translator().remove_segment(it->name);
    }
    if (borrower_map != nullptr) {
      borrower_map->remove_region(it->name);
    }
  }
  NodeInfo& ln = registry_.node(it->lender);
  ln.lent_out -= std::min(ln.lent_out, it->size);
  reservations_.erase(it);
  return true;
}

std::optional<std::uint32_t> ControlPlane::migrate(std::uint64_t reservation_id,
                                                   std::uint32_t exclude,
                                                   nic::DisaggNic* borrower_nic,
                                                   mem::MemoryMap* borrower_map) {
  auto it = std::find_if(reservations_.begin(), reservations_.end(),
                         [&](const Reservation& r) { return r.id == reservation_id; });
  if (it == reservations_.end()) return std::nullopt;

  const auto candidates =
      registry_.lender_candidates(it->size, cfg_.lender_safety_margin);
  std::vector<std::uint32_t> filtered;
  std::copy_if(candidates.begin(), candidates.end(),
               std::back_inserter(filtered), [&](std::uint32_t id) {
                 return id != it->borrower && id != exclude && id != it->lender;
               });
  const auto lender = policy_->pick(registry_, it->borrower, it->size, filtered);
  if (!lender.has_value()) {
    TFSIM_LOG(Info) << "migrate(" << it->name << "): no surviving lender";
    return std::nullopt;
  }

  NodeInfo& old_ln = registry_.node(it->lender);
  old_ln.lent_out -= std::min(old_ln.lent_out, it->size);
  NodeInfo& new_ln = registry_.node(*lender);
  it->lender_base = new_ln.lent_out;
  new_ln.lent_out += it->size;
  const std::uint32_t old_lender = it->lender;
  it->lender = *lender;

  if (it->attached && borrower_nic != nullptr) {
    // Recover the borrower physical base from the installed segment so the
    // replacement lands at the same address.
    mem::Range borrower_range{};
    for (const auto& seg : borrower_nic->translator().segments()) {
      if (seg.name == it->name) {
        borrower_range = seg.borrower;
        break;
      }
    }
    borrower_nic->translator().remove_segment(it->name);
    borrower_nic->translator().add_segment(nic::Segment{
        borrower_range, it->lender_base, it->lender, it->name});
    if (borrower_map != nullptr) {
      borrower_map->remove_region(it->name);
      borrower_map->add_region(mem::Region{borrower_range,
                                           mem::Backing::kRemoteDram,
                                           it->lender, it->name});
    }
  }
  TFSIM_LOG(Info) << "migrate(" << it->name << "): lender " << old_lender
                  << " -> " << it->lender;
  return it->lender;
}

const Reservation* ControlPlane::find(std::uint64_t reservation_id) const {
  const auto it =
      std::find_if(reservations_.begin(), reservations_.end(),
                   [&](const Reservation& r) { return r.id == reservation_id; });
  return it == reservations_.end() ? nullptr : &*it;
}

}  // namespace tfsim::ctrl
