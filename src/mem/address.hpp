// Physical addresses, cache-line geometry, and address-space layout.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace tfsim::mem {

using Addr = std::uint64_t;

/// POWER9 cache-line size; also ThymesisFlow's remote access granularity.
inline constexpr std::uint32_t kCacheLineBytes = 128;

constexpr Addr line_base(Addr a, std::uint32_t line = kCacheLineBytes) {
  return a & ~static_cast<Addr>(line - 1);
}
constexpr std::uint64_t lines_spanned(Addr a, std::uint64_t bytes,
                                      std::uint32_t line = kCacheLineBytes) {
  if (bytes == 0) return 0;
  const Addr first = line_base(a, line);
  const Addr last = line_base(a + bytes - 1, line);
  return (last - first) / line + 1;
}

/// Half-open address range [base, base+size).
struct Range {
  Addr base = 0;
  std::uint64_t size = 0;

  Addr end() const { return base + size; }
  bool contains(Addr a) const { return a >= base && a < end(); }
  bool overlaps(const Range& o) const {
    return base < o.end() && o.base < end();
  }
};

/// Where a region of the borrower physical address space is backed.
enum class Backing {
  kLocalDram,    ///< node-local memory
  kRemoteDram,   ///< disaggregated memory on a lender node
};

struct Region {
  Range range;
  Backing backing = Backing::kLocalDram;
  std::uint32_t lender_id = 0;  ///< valid when backing == kRemoteDram
  std::string name;
};

/// The borrower node's physical memory map: local DRAM plus hot-plugged
/// remote regions.  Lookup tells the cache-miss path where a line lives.
class MemoryMap {
 public:
  /// Add a region; throws std::invalid_argument on overlap.
  void add_region(Region region);
  /// Remove a region by name (hot-unplug); returns false if absent.
  bool remove_region(const std::string& name);

  const Region* find(Addr a) const;
  const std::vector<Region>& regions() const { return regions_; }

  std::uint64_t total_bytes(Backing backing) const;

 private:
  std::vector<Region> regions_;
};

}  // namespace tfsim::mem
