#include "mem/cache.hpp"

#include <stdexcept>

namespace tfsim::mem {

SetAssocCache::SetAssocCache(const CacheConfig& cfg, std::string name)
    : cfg_(cfg), name_(std::move(name)) {
  if (cfg_.line_bytes == 0 || (cfg_.line_bytes & (cfg_.line_bytes - 1)) != 0) {
    throw std::invalid_argument("cache line size must be a power of two");
  }
  if (cfg_.associativity == 0) {
    throw std::invalid_argument("cache geometry must be non-degenerate");
  }
  sets_count_ = cfg_.num_sets();
  if (sets_count_ == 0) {
    throw std::invalid_argument("cache geometry must be non-degenerate");
  }
  if (cfg_.size_bytes % (static_cast<std::uint64_t>(cfg_.associativity) * cfg_.line_bytes) != 0) {
    throw std::invalid_argument("cache size must divide into sets evenly");
  }
  ways_.resize(sets_count_ * cfg_.associativity);
}

void SetAssocCache::reset_sets() {
  for (auto& w : ways_) w = Way{};
}

SetAssocCache::AccessResult SetAssocCache::access(Addr addr, bool write) {
  const Addr line = line_base(addr, cfg_.line_bytes);
  const std::uint64_t set = set_index(line);
  const Addr tag = tag_of(line);
  Way* base = &ways_[set * cfg_.associativity];
  ++clock_;

  Way* lru = base;
  bool have_invalid = false;
  for (std::uint32_t i = 0; i < cfg_.associativity; ++i) {
    Way& w = base[i];
    if (w.valid && w.tag == tag) {
      w.lru = clock_;
      w.dirty = w.dirty || write;
      ++stats_.hits;
      return AccessResult{true, false, 0};
    }
    if (!w.valid) {
      if (!have_invalid) {
        lru = &w;  // prefer an invalid way as the victim
        have_invalid = true;
      }
    } else if (!have_invalid && lru->valid && w.lru < lru->lru) {
      lru = &w;
    }
  }
  if (!have_invalid && cfg_.replacement == Replacement::kRandom) {
    // xorshift victim pick: cheap and stateless per access.
    victim_seed_ ^= victim_seed_ << 13;
    victim_seed_ ^= victim_seed_ >> 7;
    victim_seed_ ^= victim_seed_ << 17;
    lru = &base[victim_seed_ % cfg_.associativity];
  }

  ++stats_.misses;
  AccessResult res;
  if (lru->valid && lru->dirty) {
    res.writeback = true;
    res.victim_line = line_from(set, lru->tag);
    ++stats_.writebacks;
  }
  lru->tag = tag;
  lru->valid = true;
  lru->dirty = write;
  lru->lru = clock_;
  return res;
}

bool SetAssocCache::probe(Addr addr) const {
  const Addr line = line_base(addr, cfg_.line_bytes);
  const std::uint64_t set = set_index(line);
  const Addr tag = tag_of(line);
  const Way* base = &ways_[set * cfg_.associativity];
  for (std::uint32_t i = 0; i < cfg_.associativity; ++i) {
    if (base[i].valid && base[i].tag == tag) return true;
  }
  return false;
}

bool SetAssocCache::invalidate(Addr addr, bool* was_dirty) {
  const Addr line = line_base(addr, cfg_.line_bytes);
  const std::uint64_t set = set_index(line);
  const Addr tag = tag_of(line);
  Way* base = &ways_[set * cfg_.associativity];
  for (std::uint32_t i = 0; i < cfg_.associativity; ++i) {
    Way& w = base[i];
    if (w.valid && w.tag == tag) {
      if (was_dirty != nullptr) *was_dirty = w.dirty;
      w = Way{};
      ++stats_.invalidations;
      return true;
    }
  }
  if (was_dirty != nullptr) *was_dirty = false;
  return false;
}

std::uint64_t SetAssocCache::invalidate_range(const Range& range) {
  // Walk resident ways rather than the (possibly huge) address range.
  std::uint64_t dropped = 0;
  for (std::uint64_t set = 0; set < sets_count_; ++set) {
    Way* base = &ways_[set * cfg_.associativity];
    for (std::uint32_t i = 0; i < cfg_.associativity; ++i) {
      Way& w = base[i];
      if (w.valid && range.contains(line_from(set, w.tag))) {
        w = Way{};
        ++stats_.invalidations;
        ++dropped;
      }
    }
  }
  return dropped;
}

std::uint64_t SetAssocCache::resident_lines() const {
  std::uint64_t n = 0;
  for (const auto& w : ways_) n += w.valid ? 1 : 0;
  return n;
}

}  // namespace tfsim::mem
