// DRAM / memory-bus model.
//
// A node's memory bus is a shared FIFO bandwidth server (per-socket GB/s
// scale) plus a fixed access latency.  Both local applications and the
// lender-side disaggregated-memory NIC draw from the same server, which is
// exactly the contention point the paper's MCLN experiment (Fig. 7)
// exercises: the bus is so much faster than the network that lender-side
// contention barely moves borrower-visible bandwidth.
#pragma once

#include <cstdint>
#include <string>

#include "mem/address.hpp"
#include "sim/domain.hpp"
#include "sim/server.hpp"
#include "sim/units.hpp"

namespace tfsim::mem {

struct DramConfig {
  std::uint64_t capacity_bytes = 512 * sim::kGiB;  ///< AC922: 512 GB/node
  sim::Bandwidth bus_bandwidth = sim::Bandwidth::from_gbyte(140.0);
  sim::Time access_latency = sim::from_ns(95.0);  ///< loaded CAS-to-data
};

class Dram {
 public:
  explicit Dram(const DramConfig& cfg, std::string name = "dram")
      : cfg_(cfg), name_(std::move(name)),
        server_(cfg.bus_bandwidth, cfg.access_latency) {}

  /// Access `bytes` starting at time `now`; returns the completion time.
  /// The latency QoS class bypasses queued bulk work (memory-controller
  /// read prioritization) -- also what keeps the analytic FIFO's
  /// call-order approximation from penalizing bypassing traffic.
  sim::Time access(sim::Time now, std::uint64_t bytes,
                   sim::Priority prio = sim::Priority::kBulk) {
    TFSIM_DOMAIN_TOUCH("Dram::access");
    return server_.request(now, bytes, prio);
  }

  /// One cache-line access.
  sim::Time access_line(sim::Time now) { return access(now, kCacheLineBytes); }

  const DramConfig& config() const { return cfg_; }
  const std::string& name() const { return name_; }
  std::uint64_t bytes_served() const { return server_.bytes_served(); }
  std::uint64_t requests() const { return server_.requests(); }
  sim::Time busy_time() const { return server_.busy_time(); }
  sim::Time backlog(sim::Time now,
                    sim::Priority prio = sim::Priority::kBulk) const {
    return server_.backlog(now, prio);
  }

  /// Fraction of `elapsed` the bus spent busy.
  double utilization(sim::Time elapsed) const {
    return elapsed ? sim::to_sec(server_.busy_time()) / sim::to_sec(elapsed)
                   : 0.0;
  }

  TFSIM_DOMAIN_OWNED

 private:
  DramConfig cfg_;
  std::string name_;
  sim::PriorityBandwidthServer server_;
};

}  // namespace tfsim::mem
