// Set-associative cache model (functional: hit/miss/writeback tracking, no
// data payload).  Write-back, write-allocate, true-LRU replacement.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mem/address.hpp"

namespace tfsim::mem {

enum class Replacement {
  kLru,     ///< true LRU (small L1/L2 arrays)
  kRandom,  ///< pseudo-random victim (POWER9 L3 victim-cache slices behave
            ///< far closer to this than to global LRU under streaming)
};

struct CacheConfig {
  std::uint64_t size_bytes = 32 * 1024;
  std::uint32_t associativity = 8;
  std::uint32_t line_bytes = kCacheLineBytes;
  Replacement replacement = Replacement::kLru;

  std::uint64_t num_lines() const { return size_bytes / line_bytes; }
  std::uint64_t num_sets() const { return num_lines() / associativity; }
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t writebacks = 0;
  std::uint64_t invalidations = 0;

  std::uint64_t accesses() const { return hits + misses; }
  double hit_rate() const {
    return accesses() ? static_cast<double>(hits) / static_cast<double>(accesses())
                      : 0.0;
  }
};

class SetAssocCache {
 public:
  explicit SetAssocCache(const CacheConfig& cfg, std::string name = "cache");

  struct AccessResult {
    bool hit = false;
    bool writeback = false;   ///< a dirty victim was evicted
    Addr victim_line = 0;     ///< line address of the evicted dirty victim
  };

  /// Access the line containing `addr`; on miss the line is allocated
  /// (write-allocate) and the LRU victim evicted.
  AccessResult access(Addr addr, bool write);

  /// True if the line is present (no state change).
  bool probe(Addr addr) const;

  /// Drop the line if present; returns true (and reports dirtiness) if it
  /// was resident.
  bool invalidate(Addr addr, bool* was_dirty = nullptr);

  /// Invalidate every line in [range) -- used on hot-unplug.
  std::uint64_t invalidate_range(const Range& range);

  void flush() { reset_sets(); }

  const CacheConfig& config() const { return cfg_; }
  const CacheStats& stats() const { return stats_; }
  const std::string& name() const { return name_; }
  std::uint64_t resident_lines() const;

 private:
  struct Way {
    Addr tag = 0;
    bool valid = false;
    bool dirty = false;
    std::uint64_t lru = 0;  ///< last-touch stamp; smallest = LRU victim
  };

  std::uint64_t set_index(Addr line) const { return (line / cfg_.line_bytes) % sets_count_; }
  Addr tag_of(Addr line) const { return line / cfg_.line_bytes / sets_count_; }
  Addr line_from(std::uint64_t set, Addr tag) const {
    return (tag * sets_count_ + set) * cfg_.line_bytes;
  }
  void reset_sets();

  CacheConfig cfg_;
  std::string name_;
  std::uint64_t sets_count_ = 0;
  std::vector<Way> ways_;  ///< sets_count_ x associativity, row-major
  std::uint64_t clock_ = 0;
  std::uint64_t victim_seed_ = 0x2545F4914F6CDD1DULL;
  CacheStats stats_;
};

}  // namespace tfsim::mem
