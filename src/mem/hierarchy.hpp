// Multi-level cache hierarchy.
//
// Functional model: each level is a SetAssocCache; an access probes L1
// outward, allocating the line in every level it missed (mostly-inclusive,
// like POWER9's L1/L2/L3 victim-ish hierarchy approximated).  Dirty victims
// evicted from the last level are reported so the memory side (local DRAM or
// the remote lender) can be charged for the writeback.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mem/cache.hpp"
#include "sim/domain.hpp"
#include "sim/units.hpp"

namespace tfsim::mem {

struct LevelConfig {
  CacheConfig cache;
  sim::Time latency = 0;  ///< load-to-use latency when this level hits
  std::string name;
};

class CacheHierarchy {
 public:
  explicit CacheHierarchy(const std::vector<LevelConfig>& levels);

  struct Result {
    /// Index of the level that hit, or -1 for a miss to memory.
    int hit_level = -1;
    /// Load-to-use latency of the hitting level (0 for memory miss; the
    /// memory path is charged by the caller).
    sim::Time latency = 0;
    /// Dirty lines evicted from the last level by this access.
    std::vector<Addr> memory_writebacks;
  };

  Result access(Addr addr, bool write);

  /// Invalidate a line everywhere (coherence / hot-unplug).
  void invalidate(Addr addr);
  std::uint64_t invalidate_range(const Range& range);
  void flush();

  std::size_t num_levels() const { return levels_.size(); }
  const SetAssocCache& level(std::size_t i) const { return *levels_.at(i); }
  sim::Time level_latency(std::size_t i) const { return latencies_.at(i); }

  /// Total capacity across levels (the paper sizes STREAM beyond this).
  std::uint64_t total_capacity() const;

  TFSIM_DOMAIN_OWNED

 private:
  std::vector<std::unique_ptr<SetAssocCache>> levels_;
  std::vector<sim::Time> latencies_;
};

/// POWER9 AC922-like hierarchy (per-core L1/L2, 120 MiB shared L3 as in the
/// paper's testbed: "total cache size of 120 MiB on each node").
std::vector<LevelConfig> power9_like_hierarchy();

}  // namespace tfsim::mem
