#include "mem/hierarchy.hpp"

#include <stdexcept>

namespace tfsim::mem {

CacheHierarchy::CacheHierarchy(const std::vector<LevelConfig>& levels) {
  if (levels.empty()) {
    throw std::invalid_argument("CacheHierarchy: needs at least one level");
  }
  for (const auto& lc : levels) {
    levels_.push_back(std::make_unique<SetAssocCache>(lc.cache, lc.name));
    latencies_.push_back(lc.latency);
  }
}

CacheHierarchy::Result CacheHierarchy::access(Addr addr, bool write) {
  TFSIM_DOMAIN_TOUCH("CacheHierarchy::access");
  Result res;
  const auto n = levels_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const auto r = levels_[i]->access(addr, write);
    if (r.hit) {
      if (res.hit_level < 0) {
        res.hit_level = static_cast<int>(i);
        res.latency = latencies_[i];
      }
      // Levels inward of the hit already allocated the line (loop order),
      // so stop probing outward.
      return res;
    }
    // Miss at level i: the line was allocated there; a dirty victim from the
    // last level leaves the hierarchy entirely.
    if (r.writeback && i + 1 == n) {
      res.memory_writebacks.push_back(r.victim_line);
    }
  }
  return res;  // hit_level == -1: miss to memory
}

void CacheHierarchy::invalidate(Addr addr) {
  TFSIM_DOMAIN_TOUCH("CacheHierarchy::invalidate");
  for (auto& l : levels_) l->invalidate(addr);
}

std::uint64_t CacheHierarchy::invalidate_range(const Range& range) {
  TFSIM_DOMAIN_TOUCH("CacheHierarchy::invalidate_range");
  std::uint64_t dropped = 0;
  for (auto& l : levels_) dropped += l->invalidate_range(range);
  return dropped;
}

void CacheHierarchy::flush() {
  TFSIM_DOMAIN_TOUCH("CacheHierarchy::flush");
  for (auto& l : levels_) l->flush();
}

std::uint64_t CacheHierarchy::total_capacity() const {
  std::uint64_t total = 0;
  for (const auto& l : levels_) total += l->config().size_bytes;
  return total;
}

std::vector<LevelConfig> power9_like_hierarchy() {
  using sim::from_ns;
  return {
      LevelConfig{CacheConfig{32 * sim::kKiB, 8, kCacheLineBytes,
                              Replacement::kLru},
                  from_ns(1.2), "L1D"},
      LevelConfig{CacheConfig{512 * sim::kKiB, 8, kCacheLineBytes,
                              Replacement::kLru},
                  from_ns(4.0), "L2"},
      // POWER9's 120 MiB L3 is 10 MiB-per-core victim slices, not one
      // global LRU pool: a thread keeps fast access to its own slice and
      // only lazily spills to remote slices, so the capacity that behaves
      // like a cache for one application context is a couple of slices.
      // Pseudo-random replacement models how streaming traffic displaces
      // hot lines inside a slice.
      LevelConfig{CacheConfig{10 * sim::kMiB, 20, kCacheLineBytes,
                              Replacement::kRandom},
                  from_ns(28.0), "L3"},
  };
}

}  // namespace tfsim::mem
