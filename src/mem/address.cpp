#include "mem/address.hpp"

#include <algorithm>
#include <stdexcept>

namespace tfsim::mem {

void MemoryMap::add_region(Region region) {
  if (region.range.size == 0) {
    throw std::invalid_argument("MemoryMap: empty region " + region.name);
  }
  for (const auto& r : regions_) {
    if (r.range.overlaps(region.range)) {
      throw std::invalid_argument("MemoryMap: region " + region.name +
                                  " overlaps " + r.name);
    }
  }
  regions_.push_back(std::move(region));
  std::sort(regions_.begin(), regions_.end(),
            [](const Region& a, const Region& b) {
              return a.range.base < b.range.base;
            });
}

bool MemoryMap::remove_region(const std::string& name) {
  const auto it = std::find_if(regions_.begin(), regions_.end(),
                               [&](const Region& r) { return r.name == name; });
  if (it == regions_.end()) return false;
  regions_.erase(it);
  return true;
}

const Region* MemoryMap::find(Addr a) const {
  // regions_ sorted by base: binary search for the last region with base <= a.
  auto it = std::upper_bound(
      regions_.begin(), regions_.end(), a,
      [](Addr addr, const Region& r) { return addr < r.range.base; });
  if (it == regions_.begin()) return nullptr;
  --it;
  return it->range.contains(a) ? &*it : nullptr;
}

std::uint64_t MemoryMap::total_bytes(Backing backing) const {
  std::uint64_t total = 0;
  for (const auto& r : regions_) {
    if (r.backing == backing) total += r.range.size;
  }
  return total;
}

}  // namespace tfsim::mem
