#include "scenario/scenario.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace tfsim::scenario {

namespace {

constexpr double kBytesPerGiB = 1024.0 * 1024.0 * 1024.0;

/// Reject unknown keys so a typo in a scenario file is an error, not a
/// silently-ignored setting.
void check_keys(const Json& obj, const std::string& where,
                std::initializer_list<const char*> allowed) {
  for (const auto& [key, value] : obj.members()) {
    (void)value;
    bool ok = false;
    for (const char* a : allowed) {
      if (key == a) {
        ok = true;
        break;
      }
    }
    if (!ok) {
      throw JsonError("scenario: unknown key \"" + key + "\" in " + where);
    }
  }
}

double get_double(const Json& obj, const char* key, double def) {
  const Json* v = obj.find(key);
  return v != nullptr ? v->as_double() : def;
}

std::uint64_t get_uint(const Json& obj, const char* key, std::uint64_t def) {
  const Json* v = obj.find(key);
  return v != nullptr ? v->as_uint() : def;
}

std::string get_string(const Json& obj, const char* key,
                       const std::string& def) {
  const Json* v = obj.find(key);
  return v != nullptr ? v->as_string() : def;
}

mem::DramConfig parse_dram(const Json& obj) {
  check_keys(obj, "dram", {"capacity_gib", "bandwidth_gbyte", "latency_ns"});
  mem::DramConfig cfg;
  cfg.capacity_bytes = static_cast<std::uint64_t>(
      get_double(obj, "capacity_gib",
                 static_cast<double>(cfg.capacity_bytes) / kBytesPerGiB) *
      kBytesPerGiB);
  cfg.bus_bandwidth = sim::Bandwidth::from_gbyte(
      get_double(obj, "bandwidth_gbyte", cfg.bus_bandwidth.gbyte_per_sec()));
  cfg.access_latency = sim::from_ns(
      get_double(obj, "latency_ns", sim::to_ns(cfg.access_latency)));
  return cfg;
}

nic::NicConfig parse_nic(const Json& obj) {
  check_keys(obj, "nic",
             {"window_entries", "latency_reserved_entries", "fpga_clock_mhz",
              "period", "processing_ns", "retry_timeout_us", "retry_backoff",
              "max_retries", "detach_threshold"});
  nic::NicConfig cfg;
  cfg.window_entries =
      static_cast<std::uint32_t>(get_uint(obj, "window_entries", cfg.window_entries));
  cfg.latency_reserved_entries = static_cast<std::uint32_t>(
      get_uint(obj, "latency_reserved_entries", cfg.latency_reserved_entries));
  cfg.fpga_clock_hz =
      get_double(obj, "fpga_clock_mhz", cfg.fpga_clock_hz / 1e6) * 1e6;
  cfg.period = get_uint(obj, "period", cfg.period);
  cfg.processing_latency = sim::from_ns(
      get_double(obj, "processing_ns", sim::to_ns(cfg.processing_latency)));
  cfg.replay.retry_timeout = sim::from_us(get_double(
      obj, "retry_timeout_us", sim::to_us(cfg.replay.retry_timeout)));
  cfg.replay.backoff = get_double(obj, "retry_backoff", cfg.replay.backoff);
  cfg.replay.max_retries = static_cast<std::uint32_t>(
      get_uint(obj, "max_retries", cfg.replay.max_retries));
  cfg.replay.detach_threshold = static_cast<std::uint32_t>(
      get_uint(obj, "detach_threshold", cfg.replay.detach_threshold));
  return cfg;
}

net::LinkConfig parse_link(const Json& obj, const std::string& where) {
  check_keys(obj, where, {"bandwidth_gbit", "propagation_ns"});
  net::LinkConfig cfg;
  cfg.bandwidth = sim::Bandwidth::from_gbit(
      get_double(obj, "bandwidth_gbit", cfg.bandwidth.gbit_per_sec()));
  cfg.propagation = sim::from_ns(
      get_double(obj, "propagation_ns", sim::to_ns(cfg.propagation)));
  return cfg;
}

net::SwitchConfig parse_switch(const Json& obj) {
  check_keys(obj, "switch", {"buffer_kib", "policy"});
  net::SwitchConfig cfg;
  cfg.buffer_bytes = static_cast<std::uint64_t>(
      get_double(obj, "buffer_kib",
                 static_cast<double>(cfg.buffer_bytes) / 1024.0) *
      1024.0);
  const std::string policy =
      get_string(obj, "policy", net::to_string(cfg.policy));
  try {
    cfg.policy = net::parse_queue_policy(policy);
  } catch (const std::invalid_argument&) {
    throw JsonError("scenario: unknown switch policy \"" + policy + "\"");
  }
  return cfg;
}

NodeDecl parse_node(const Json& obj) {
  check_keys(obj, "node", {"name", "role", "count", "dram", "with_nic", "nic"});
  NodeDecl decl;
  decl.name = get_string(obj, "name", decl.name);
  decl.role = parse_role(get_string(obj, "role", "lender"));
  decl.count = static_cast<std::uint32_t>(get_uint(obj, "count", 1));
  if (decl.count == 0) throw JsonError("scenario: node count must be >= 1");
  if (const Json* d = obj.find("dram")) decl.dram = parse_dram(*d);
  if (const Json* w = obj.find("with_nic")) decl.with_nic = w->as_bool();
  if (const Json* n = obj.find("nic")) decl.nic = parse_nic(*n);
  return decl;
}

Json dump_node(const NodeDecl& d) {
  Json node = Json::object();
  node.set("name", Json::string(d.name));
  node.set("role", Json::string(to_string(d.role)));
  node.set("count", Json::number(std::uint64_t{d.count}));
  Json dram = Json::object();
  dram.set("capacity_gib",
           Json::number(static_cast<double>(d.dram.capacity_bytes) / kBytesPerGiB));
  dram.set("bandwidth_gbyte", Json::number(d.dram.bus_bandwidth.gbyte_per_sec()));
  dram.set("latency_ns", Json::number(sim::to_ns(d.dram.access_latency)));
  node.set("dram", std::move(dram));
  node.set("with_nic", Json::boolean(d.nic_enabled()));
  Json nic = Json::object();
  nic.set("window_entries", Json::number(std::uint64_t{d.nic.window_entries}));
  nic.set("latency_reserved_entries",
          Json::number(std::uint64_t{d.nic.latency_reserved_entries}));
  nic.set("fpga_clock_mhz", Json::number(d.nic.fpga_clock_hz / 1e6));
  nic.set("period", Json::number(d.nic.period));
  nic.set("processing_ns", Json::number(sim::to_ns(d.nic.processing_latency)));
  nic.set("retry_timeout_us",
          Json::number(sim::to_us(d.nic.replay.retry_timeout)));
  nic.set("retry_backoff", Json::number(d.nic.replay.backoff));
  nic.set("max_retries", Json::number(std::uint64_t{d.nic.replay.max_retries}));
  nic.set("detach_threshold",
          Json::number(std::uint64_t{d.nic.replay.detach_threshold}));
  node.set("nic", std::move(nic));
  return node;
}

FaultSpec parse_faults(const Json& obj) {
  check_keys(obj, "faults",
             {"loss_rate", "corrupt_rate", "seed", "flaps", "kill_lender"});
  FaultSpec f;
  f.link.loss_rate = get_double(obj, "loss_rate", f.link.loss_rate);
  f.link.corrupt_rate = get_double(obj, "corrupt_rate", f.link.corrupt_rate);
  if (f.link.loss_rate < 0.0 || f.link.loss_rate > 1.0) {
    throw JsonError("scenario: faults loss_rate must be in [0, 1]");
  }
  if (f.link.corrupt_rate < 0.0 || f.link.corrupt_rate > 1.0) {
    throw JsonError("scenario: faults corrupt_rate must be in [0, 1]");
  }
  f.link.seed = get_uint(obj, "seed", f.link.seed);
  if (const Json* flaps = obj.find("flaps")) {
    for (const auto& fl : flaps->items()) {
      check_keys(fl, "flap", {"at_us", "for_us", "factor"});
      net::FlapSpec flap;
      flap.start = sim::from_us(get_double(fl, "at_us", 0.0));
      flap.duration = sim::from_us(get_double(fl, "for_us", 0.0));
      flap.bandwidth_factor = get_double(fl, "factor", 0.0);
      f.link.flaps.push_back(flap);
    }
    // Catch broken schedules (zero-duration, factor out of range, windows
    // overlapping) at parse time, when the error can still name the file,
    // instead of when the Nth sweep point constructs its FaultPlan.
    try {
      net::validate_flap_schedule(f.link.flaps, "faults flaps");
    } catch (const std::invalid_argument& e) {
      throw JsonError("scenario: " + std::string(e.what()));
    }
  }
  if (const Json* kl = obj.find("kill_lender")) {
    check_keys(*kl, "kill_lender", {"node", "at_us"});
    f.kill_lender = get_string(*kl, "node", "");
    if (f.kill_lender.empty()) {
      throw JsonError("scenario: kill_lender requires a \"node\" name");
    }
    f.kill_at_us = get_double(*kl, "at_us", 0.0);
  }
  return f;
}

Json dump_faults(const FaultSpec& f) {
  Json obj = Json::object();
  obj.set("loss_rate", Json::number(f.link.loss_rate));
  obj.set("corrupt_rate", Json::number(f.link.corrupt_rate));
  obj.set("seed", Json::number(f.link.seed));
  Json flaps = Json::array();
  for (const auto& flap : f.link.flaps) {
    Json fl = Json::object();
    fl.set("at_us", Json::number(sim::to_us(flap.start)));
    fl.set("for_us", Json::number(sim::to_us(flap.duration)));
    fl.set("factor", Json::number(flap.bandwidth_factor));
    flaps.push(std::move(fl));
  }
  obj.set("flaps", std::move(flaps));
  if (!f.kill_lender.empty()) {
    Json kl = Json::object();
    kl.set("node", Json::string(f.kill_lender));
    kl.set("at_us", Json::number(f.kill_at_us));
    obj.set("kill_lender", std::move(kl));
  }
  return obj;
}

ChaosSpec parse_chaos(const Json& obj) {
  check_keys(obj, "chaos", {"seed", "events"});
  ChaosSpec c;
  c.seed = get_uint(obj, "seed", c.seed);
  if (const Json* events = obj.find("events")) {
    for (const auto& ev : events->items()) {
      check_keys(ev, "chaos event",
                 {"at_us", "kind", "target", "factor", "for_us"});
      ChaosEventSpec spec;
      spec.at_us = get_double(ev, "at_us", 0.0);
      const std::string kind = get_string(ev, "kind", "");
      try {
        spec.kind = parse_chaos_kind(kind);
      } catch (const std::invalid_argument& e) {
        throw JsonError("scenario: " + std::string(e.what()));
      }
      spec.target = get_string(ev, "target", "");
      spec.factor = get_double(ev, "factor", 0.0);
      spec.for_us = get_double(ev, "for_us", 0.0);
      c.events.push_back(std::move(spec));
    }
  }
  // Resolve once now and discard: a malformed timeline (unmatched recover,
  // overlapping windows, bad factors) fails at parse time with the event
  // index, not deep inside cluster assembly.
  try {
    resolve_chaos(c);
  } catch (const std::invalid_argument& e) {
    throw JsonError("scenario: " + std::string(e.what()));
  }
  return c;
}

Json dump_chaos(const ChaosSpec& c) {
  Json obj = Json::object();
  obj.set("seed", Json::number(c.seed));
  Json events = Json::array();
  for (const auto& spec : c.events) {
    Json ev = Json::object();
    ev.set("at_us", Json::number(spec.at_us));
    ev.set("kind", Json::string(to_string(spec.kind)));
    ev.set("target", Json::string(spec.target));
    ev.set("factor", Json::number(spec.factor));
    ev.set("for_us", Json::number(spec.for_us));
    events.push(std::move(ev));
  }
  obj.set("events", std::move(events));
  return obj;
}

DetectorSpec parse_detector(const Json& obj) {
  check_keys(obj, "detector",
             {"enabled", "alpha", "latency_threshold", "timeout_weight",
              "warmup", "confirm", "probe_interval", "rejoin_margin",
              "rejoin_confirm"});
  DetectorSpec d;
  if (const Json* e = obj.find("enabled")) d.enabled = e->as_bool();
  d.alpha = get_double(obj, "alpha", d.alpha);
  d.latency_threshold =
      get_double(obj, "latency_threshold", d.latency_threshold);
  d.timeout_weight = get_double(obj, "timeout_weight", d.timeout_weight);
  d.warmup = static_cast<std::uint32_t>(get_uint(obj, "warmup", d.warmup));
  d.confirm = static_cast<std::uint32_t>(get_uint(obj, "confirm", d.confirm));
  d.probe_interval = static_cast<std::uint32_t>(
      get_uint(obj, "probe_interval", d.probe_interval));
  d.rejoin_margin = get_double(obj, "rejoin_margin", d.rejoin_margin);
  d.rejoin_confirm = static_cast<std::uint32_t>(
      get_uint(obj, "rejoin_confirm", d.rejoin_confirm));
  if (d.alpha <= 0.0 || d.alpha > 1.0) {
    throw JsonError("scenario: detector alpha must be in (0, 1]");
  }
  if (d.latency_threshold <= 1.0) {
    throw JsonError("scenario: detector latency_threshold must be > 1");
  }
  if (d.timeout_weight < 0.0) {
    throw JsonError("scenario: detector timeout_weight must be >= 0");
  }
  if (d.warmup == 0 || d.confirm == 0) {
    throw JsonError("scenario: detector warmup and confirm must be >= 1");
  }
  if (d.probe_interval == 0 || d.rejoin_confirm == 0) {
    throw JsonError(
        "scenario: detector probe_interval and rejoin_confirm must be >= 1");
  }
  if (d.rejoin_margin < 1.0) {
    throw JsonError("scenario: detector rejoin_margin must be >= 1");
  }
  return d;
}

Json dump_detector(const DetectorSpec& d) {
  Json obj = Json::object();
  obj.set("enabled", Json::boolean(d.enabled));
  obj.set("alpha", Json::number(d.alpha));
  obj.set("latency_threshold", Json::number(d.latency_threshold));
  obj.set("timeout_weight", Json::number(d.timeout_weight));
  obj.set("warmup", Json::number(std::uint64_t{d.warmup}));
  obj.set("confirm", Json::number(std::uint64_t{d.confirm}));
  obj.set("probe_interval", Json::number(std::uint64_t{d.probe_interval}));
  obj.set("rejoin_margin", Json::number(d.rejoin_margin));
  obj.set("rejoin_confirm", Json::number(std::uint64_t{d.rejoin_confirm}));
  return obj;
}

TrafficSpec parse_traffic(const Json& obj) {
  check_keys(obj, "traffic",
             {"process", "rate_rps", "clients", "seed", "max_in_flight",
              "queue_depth", "duration_us", "timeout_us", "req_bytes",
              "resp_bytes", "burst_on_us", "burst_off_us",
              "diurnal_period_us", "diurnal_amplitude", "lender_capacity_rps",
              "qos_window_us", "tenant_gib", "failover_threshold", "tenants"});
  TrafficSpec t;
  t.process = get_string(obj, "process", "");
  if (!t.process.empty() && t.process != "poisson" && t.process != "bursty" &&
      t.process != "diurnal") {
    throw JsonError("scenario: unknown traffic process \"" + t.process + "\"");
  }
  t.rate_rps = get_double(obj, "rate_rps", t.rate_rps);
  t.clients = get_uint(obj, "clients", t.clients);
  t.seed = get_uint(obj, "seed", t.seed);
  t.max_in_flight =
      static_cast<std::uint32_t>(get_uint(obj, "max_in_flight", t.max_in_flight));
  t.queue_depth =
      static_cast<std::uint32_t>(get_uint(obj, "queue_depth", t.queue_depth));
  t.duration_us = get_double(obj, "duration_us", t.duration_us);
  t.timeout_us = get_double(obj, "timeout_us", t.timeout_us);
  t.req_bytes = get_uint(obj, "req_bytes", t.req_bytes);
  t.resp_bytes = get_uint(obj, "resp_bytes", t.resp_bytes);
  t.burst_on_us = get_double(obj, "burst_on_us", t.burst_on_us);
  t.burst_off_us = get_double(obj, "burst_off_us", t.burst_off_us);
  t.diurnal_period_us =
      get_double(obj, "diurnal_period_us", t.diurnal_period_us);
  t.diurnal_amplitude =
      get_double(obj, "diurnal_amplitude", t.diurnal_amplitude);
  t.lender_capacity_rps =
      get_double(obj, "lender_capacity_rps", t.lender_capacity_rps);
  t.qos_window_us = get_double(obj, "qos_window_us", t.qos_window_us);
  t.tenant_gib = get_double(obj, "tenant_gib", t.tenant_gib);
  t.failover_threshold = static_cast<std::uint32_t>(
      get_uint(obj, "failover_threshold", t.failover_threshold));
  if (t.enabled()) {
    if (t.rate_rps <= 0.0) {
      throw JsonError("scenario: traffic rate_rps must be > 0");
    }
    if (t.duration_us <= 0.0) {
      throw JsonError("scenario: traffic duration_us must be > 0");
    }
    if (t.max_in_flight == 0) {
      throw JsonError("scenario: traffic max_in_flight must be >= 1");
    }
    if (t.diurnal_amplitude < 0.0 || t.diurnal_amplitude > 1.0) {
      throw JsonError("scenario: traffic diurnal_amplitude must be in [0,1]");
    }
  }
  if (const Json* tenants = obj.find("tenants")) {
    for (const auto& te : tenants->items()) {
      check_keys(te, "tenant", {"name", "weight", "rate_share"});
      TrafficTenantSpec spec;
      spec.name = get_string(te, "name", spec.name);
      spec.weight =
          static_cast<std::uint32_t>(get_uint(te, "weight", spec.weight));
      if (spec.weight == 0) {
        throw JsonError("scenario: tenant weight must be >= 1");
      }
      spec.rate_share = get_double(te, "rate_share", spec.rate_share);
      if (spec.rate_share <= 0.0) {
        throw JsonError("scenario: tenant rate_share must be > 0");
      }
      t.tenants.push_back(std::move(spec));
    }
  }
  return t;
}

Json dump_traffic(const TrafficSpec& t) {
  Json obj = Json::object();
  obj.set("process", Json::string(t.process));
  obj.set("rate_rps", Json::number(t.rate_rps));
  obj.set("clients", Json::number(t.clients));
  obj.set("seed", Json::number(t.seed));
  obj.set("max_in_flight", Json::number(std::uint64_t{t.max_in_flight}));
  obj.set("queue_depth", Json::number(std::uint64_t{t.queue_depth}));
  obj.set("duration_us", Json::number(t.duration_us));
  obj.set("timeout_us", Json::number(t.timeout_us));
  obj.set("req_bytes", Json::number(t.req_bytes));
  obj.set("resp_bytes", Json::number(t.resp_bytes));
  obj.set("burst_on_us", Json::number(t.burst_on_us));
  obj.set("burst_off_us", Json::number(t.burst_off_us));
  obj.set("diurnal_period_us", Json::number(t.diurnal_period_us));
  obj.set("diurnal_amplitude", Json::number(t.diurnal_amplitude));
  obj.set("lender_capacity_rps", Json::number(t.lender_capacity_rps));
  obj.set("qos_window_us", Json::number(t.qos_window_us));
  obj.set("tenant_gib", Json::number(t.tenant_gib));
  obj.set("failover_threshold",
          Json::number(std::uint64_t{t.failover_threshold}));
  Json tenants = Json::array();
  for (const auto& te : t.tenants) {
    Json tn = Json::object();
    tn.set("name", Json::string(te.name));
    tn.set("weight", Json::number(std::uint64_t{te.weight}));
    tn.set("rate_share", Json::number(te.rate_share));
    tenants.push(std::move(tn));
  }
  obj.set("tenants", std::move(tenants));
  return obj;
}

SloSpec parse_slo(const Json& obj) {
  check_keys(obj, "slo", {"p50_us", "p99_us", "p999_us", "window_us"});
  SloSpec s;
  s.p50_us = get_double(obj, "p50_us", s.p50_us);
  s.p99_us = get_double(obj, "p99_us", s.p99_us);
  s.p999_us = get_double(obj, "p999_us", s.p999_us);
  s.window_us = get_double(obj, "window_us", s.window_us);
  if (s.p50_us < 0.0 || s.p99_us < 0.0 || s.p999_us < 0.0) {
    throw JsonError("scenario: slo targets must be >= 0");
  }
  if (s.window_us <= 0.0) {
    throw JsonError("scenario: slo window_us must be > 0");
  }
  return s;
}

Json dump_slo(const SloSpec& s) {
  Json obj = Json::object();
  obj.set("p50_us", Json::number(s.p50_us));
  obj.set("p99_us", Json::number(s.p99_us));
  obj.set("p999_us", Json::number(s.p999_us));
  obj.set("window_us", Json::number(s.window_us));
  return obj;
}

Json dump_link(const net::LinkConfig& cfg) {
  Json link = Json::object();
  link.set("bandwidth_gbit", Json::number(cfg.bandwidth.gbit_per_sec()));
  link.set("propagation_ns", Json::number(sim::to_ns(cfg.propagation)));
  return link;
}

template <typename T>
std::vector<T> parse_uint_array(const Json& arr) {
  std::vector<T> out;
  for (const auto& v : arr.items()) out.push_back(static_cast<T>(v.as_uint()));
  return out;
}

template <typename T>
Json dump_uint_array(const std::vector<T>& xs) {
  Json arr = Json::array();
  for (const T x : xs) arr.push(Json::number(std::uint64_t{x}));
  return arr;
}

}  // namespace

std::string to_string(Role role) {
  return role == Role::kBorrower ? "borrower" : "lender";
}

Role parse_role(const std::string& name) {
  if (name == "borrower") return Role::kBorrower;
  if (name == "lender") return Role::kLender;
  throw JsonError("scenario: unknown role \"" + name + "\"");
}

std::string to_string(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kDirect: return "direct";
    case TopologyKind::kDumbbell: return "dumbbell";
    case TopologyKind::kLeafSpine: return "leaf_spine";
  }
  return "?";
}

TopologyKind parse_topology_kind(const std::string& name) {
  if (name == "direct") return TopologyKind::kDirect;
  if (name == "dumbbell") return TopologyKind::kDumbbell;
  if (name == "leaf_spine") return TopologyKind::kLeafSpine;
  throw JsonError("scenario: unknown topology kind \"" + name + "\"");
}

std::string to_string(ChaosKind kind) {
  switch (kind) {
    case ChaosKind::kKillSwitch: return "kill_switch";
    case ChaosKind::kBrownoutPort: return "brownout_port";
    case ChaosKind::kGrayLender: return "gray_lender";
    case ChaosKind::kRecover: return "recover";
  }
  return "?";
}

ChaosKind parse_chaos_kind(const std::string& name) {
  if (name == "kill_switch") return ChaosKind::kKillSwitch;
  if (name == "brownout_port") return ChaosKind::kBrownoutPort;
  if (name == "gray_lender") return ChaosKind::kGrayLender;
  if (name == "recover") return ChaosKind::kRecover;
  throw std::invalid_argument("unknown chaos event kind \"" + name +
                              "\" (expected kill_switch, brownout_port, "
                              "gray_lender or recover)");
}

std::vector<ChaosWindow> resolve_chaos(const ChaosSpec& chaos) {
  std::vector<ChaosWindow> windows;
  std::map<std::string, std::size_t> open;     // target -> open window index
  std::map<std::string, sim::Time> last_end;   // target -> last bounded end
  const auto at_event = [](std::size_t i) {
    return "chaos event " + std::to_string(i);
  };
  for (std::size_t i = 0; i < chaos.events.size(); ++i) {
    const ChaosEventSpec& ev = chaos.events[i];
    if (ev.at_us < 0.0) {
      throw std::invalid_argument(at_event(i) + ": at_us must be >= 0");
    }
    if (i > 0 && ev.at_us < chaos.events[i - 1].at_us) {
      throw std::invalid_argument(
          "chaos events " + std::to_string(i - 1) + " and " +
          std::to_string(i) + " out of order (at_us must be non-decreasing)");
    }
    if (ev.target.empty()) {
      throw std::invalid_argument(at_event(i) + ": target is required");
    }
    const sim::Time at = sim::from_us(ev.at_us);
    if (ev.kind == ChaosKind::kRecover) {
      if (ev.factor != 0.0 || ev.for_us != 0.0) {
        throw std::invalid_argument(
            at_event(i) + ": recover takes no factor or for_us");
      }
      const auto it = open.find(ev.target);
      if (it == open.end()) {
        throw std::invalid_argument(at_event(i) + ": recover for \"" +
                                    ev.target +
                                    "\" matches no open chaos window");
      }
      ChaosWindow& w = windows[it->second];
      if (at <= w.start) {
        throw std::invalid_argument(
            at_event(i) + ": recover must come strictly after the \"" +
            ev.target + "\" window opened");
      }
      w.end = at;
      last_end[ev.target] = at;
      open.erase(it);
      continue;
    }
    switch (ev.kind) {
      case ChaosKind::kKillSwitch:
        if (ev.factor != 0.0) {
          throw std::invalid_argument(at_event(i) +
                                      ": kill_switch takes no factor");
        }
        break;
      case ChaosKind::kBrownoutPort:
        if (ev.factor < 0.0 || ev.factor >= 1.0) {
          throw std::invalid_argument(
              at_event(i) + ": brownout_port factor must be in [0, 1)");
        }
        if (ev.target.find(':') == std::string::npos) {
          throw std::invalid_argument(
              at_event(i) +
              ": brownout_port target must be \"switch:neighbor\"");
        }
        break;
      case ChaosKind::kGrayLender:
        if (ev.factor <= 1.0) {
          throw std::invalid_argument(
              at_event(i) + ": gray_lender factor must be > 1 (it inflates "
                            "service latency)");
        }
        break;
      case ChaosKind::kRecover: break;  // handled above
    }
    if (ev.for_us < 0.0) {
      throw std::invalid_argument(at_event(i) + ": for_us must be >= 0");
    }
    if (open.count(ev.target) != 0) {
      throw std::invalid_argument(
          at_event(i) + ": target \"" + ev.target +
          "\" already has an open chaos window (recover it first)");
    }
    if (const auto le = last_end.find(ev.target);
        le != last_end.end() && at < le->second) {
      throw std::invalid_argument(at_event(i) +
                                  " overlaps the previous window on \"" +
                                  ev.target + "\"");
    }
    ChaosWindow w;
    w.kind = ev.kind;
    w.target = ev.target;
    w.start = at;
    w.end = sim::kTimeNever;
    w.factor = ev.factor;
    if (ev.for_us > 0.0) {
      w.end = at + sim::from_us(ev.for_us);
      last_end[ev.target] = w.end;
    } else {
      open[ev.target] = windows.size();
    }
    windows.push_back(std::move(w));
  }
  return windows;
}

const NodeDecl* ScenarioSpec::find_node(const std::string& node_name) const {
  for (const auto& n : nodes) {
    if (n.name == node_name) return &n;
  }
  return nullptr;
}

std::uint32_t ScenarioSpec::expanded_node_count() const {
  std::uint32_t total = 0;
  for (const auto& n : nodes) total += n.count;
  return total;
}

void ScenarioSpec::set_lender_count(std::uint32_t count) {
  for (auto& n : nodes) {
    if (n.role == Role::kLender) n.count = count;
  }
}

void ScenarioSpec::set_borrower_count(std::uint32_t count) {
  for (auto& n : nodes) {
    if (n.role == Role::kBorrower) n.count = count;
  }
}

ScenarioSpec from_json(const Json& doc) {
  check_keys(doc, "scenario",
             {"name", "description", "nodes", "topology", "injector", "policy",
              "reservations", "workloads", "faults", "chaos", "detector",
              "traffic", "slo", "pdes", "sweep"});
  ScenarioSpec spec;
  spec.name = get_string(doc, "name", spec.name);
  spec.description = get_string(doc, "description", "");
  spec.policy = get_string(doc, "policy", spec.policy);

  const Json* nodes = doc.find("nodes");
  if (nodes == nullptr || nodes->items().empty()) {
    throw JsonError("scenario: \"nodes\" array is required and non-empty");
  }
  for (const auto& n : nodes->items()) spec.nodes.push_back(parse_node(n));

  if (const Json* topo = doc.find("topology")) {
    check_keys(*topo, "topology",
               {"kind", "link", "trunk", "uplink", "leaves", "spines",
                "switch"});
    spec.topology.kind =
        parse_topology_kind(get_string(*topo, "kind", "direct"));
    if (const Json* l = topo->find("link")) {
      spec.topology.link = parse_link(*l, "link");
    }
    if (const Json* t = topo->find("trunk")) {
      spec.topology.trunk = parse_link(*t, "trunk");
    }
    if (const Json* u = topo->find("uplink")) {
      spec.topology.uplink = parse_link(*u, "uplink");
    }
    spec.topology.leaves = static_cast<std::uint32_t>(
        get_uint(*topo, "leaves", spec.topology.leaves));
    spec.topology.spines = static_cast<std::uint32_t>(
        get_uint(*topo, "spines", spec.topology.spines));
    if (spec.topology.leaves == 0 || spec.topology.spines == 0) {
      throw JsonError(
          "scenario: topology leaves and spines must each be >= 1");
    }
    if (const Json* s = topo->find("switch")) {
      spec.topology.sw = parse_switch(*s);
    }
  }

  if (const Json* inj = doc.find("injector")) {
    check_keys(*inj, "injector", {"period", "distribution", "mean_us", "seed"});
    spec.injector.period = get_uint(*inj, "period", 1);
    const std::string dist = get_string(*inj, "distribution", "");
    if (!dist.empty()) spec.injector.dist_kind = net::parse_dist_kind(dist);
    spec.injector.dist_mean_us = get_double(*inj, "mean_us", 0.0);
    spec.injector.dist_seed = get_uint(*inj, "seed", 42);
  }

  if (const Json* rs = doc.find("reservations")) {
    for (const auto& r : rs->items()) {
      check_keys(r, "reservation", {"borrower", "size_gib", "chunks", "name"});
      ReservationSpec res;
      res.borrower = get_string(r, "borrower", "");
      res.size_gib = get_uint(r, "size_gib", res.size_gib);
      res.chunks = static_cast<std::uint32_t>(get_uint(r, "chunks", 1));
      if (res.chunks == 0) {
        throw JsonError("scenario: reservation chunks must be >= 1");
      }
      res.name = get_string(r, "name", res.name);
      spec.reservations.push_back(std::move(res));
    }
  }

  if (const Json* ws = doc.find("workloads")) {
    for (const auto& w : ws->items()) {
      check_keys(w, "workload", {"kind", "placement"});
      WorkloadSpec wl;
      wl.kind = get_string(w, "kind", wl.kind);
      wl.placement = get_string(w, "placement", wl.placement);
      spec.workloads.push_back(std::move(wl));
    }
  }

  if (const Json* f = doc.find("faults")) spec.faults = parse_faults(*f);
  if (const Json* c = doc.find("chaos")) spec.chaos = parse_chaos(*c);
  if (const Json* d = doc.find("detector")) {
    spec.detector = parse_detector(*d);
  }
  if (const Json* t = doc.find("traffic")) spec.traffic = parse_traffic(*t);
  if (const Json* s = doc.find("slo")) spec.slo = parse_slo(*s);

  if (const Json* p = doc.find("pdes")) {
    check_keys(*p, "pdes", {"threads", "lookahead_ns"});
    spec.pdes.threads =
        static_cast<std::uint32_t>(get_uint(*p, "threads", 0));
    spec.pdes.lookahead_ns = get_double(*p, "lookahead_ns", 0.0);
    if (spec.pdes.lookahead_ns < 0.0) {
      throw JsonError("scenario: pdes lookahead_ns must be >= 0");
    }
  }

  if (const Json* sw = doc.find("sweep")) {
    check_keys(*sw, "sweep", {"periods", "lenders", "borrowers", "instances"});
    if (const Json* p = sw->find("periods")) {
      spec.sweep.periods = parse_uint_array<std::uint64_t>(*p);
    }
    if (const Json* l = sw->find("lenders")) {
      spec.sweep.lenders = parse_uint_array<std::uint32_t>(*l);
    }
    if (const Json* b = sw->find("borrowers")) {
      spec.sweep.borrowers = parse_uint_array<std::uint32_t>(*b);
    }
    if (const Json* i = sw->find("instances")) {
      spec.sweep.instances = parse_uint_array<std::uint32_t>(*i);
    }
  }
  return spec;
}

ScenarioSpec parse(const std::string& text) {
  return from_json(Json::parse(text));
}

ScenarioSpec load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("scenario: cannot open " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    return parse(buf.str());
  } catch (const JsonError& e) {
    throw JsonError(path + ": " + e.what());
  }
}

Json to_json(const ScenarioSpec& spec) {
  Json doc = Json::object();
  doc.set("name", Json::string(spec.name));
  doc.set("description", Json::string(spec.description));
  doc.set("policy", Json::string(spec.policy));

  Json nodes = Json::array();
  for (const auto& n : spec.nodes) nodes.push(dump_node(n));
  doc.set("nodes", std::move(nodes));

  Json topo = Json::object();
  topo.set("kind", Json::string(to_string(spec.topology.kind)));
  topo.set("link", dump_link(spec.topology.link));
  topo.set("trunk", dump_link(spec.topology.trunk));
  topo.set("uplink", dump_link(spec.topology.uplink));
  topo.set("leaves", Json::number(std::uint64_t{spec.topology.leaves}));
  topo.set("spines", Json::number(std::uint64_t{spec.topology.spines}));
  Json sw_cfg = Json::object();
  sw_cfg.set("buffer_kib",
             Json::number(static_cast<double>(spec.topology.sw.buffer_bytes) /
                          1024.0));
  sw_cfg.set("policy", Json::string(net::to_string(spec.topology.sw.policy)));
  topo.set("switch", std::move(sw_cfg));
  doc.set("topology", std::move(topo));

  Json inj = Json::object();
  inj.set("period", Json::number(spec.injector.period));
  inj.set("distribution",
          Json::string(spec.injector.dist_kind.has_value()
                           ? net::to_string(*spec.injector.dist_kind)
                           : ""));
  inj.set("mean_us", Json::number(spec.injector.dist_mean_us));
  inj.set("seed", Json::number(spec.injector.dist_seed));
  doc.set("injector", std::move(inj));

  Json rs = Json::array();
  for (const auto& r : spec.reservations) {
    Json res = Json::object();
    res.set("borrower", Json::string(r.borrower));
    res.set("size_gib", Json::number(r.size_gib));
    res.set("chunks", Json::number(std::uint64_t{r.chunks}));
    res.set("name", Json::string(r.name));
    rs.push(std::move(res));
  }
  doc.set("reservations", std::move(rs));

  Json ws = Json::array();
  for (const auto& w : spec.workloads) {
    Json wl = Json::object();
    wl.set("kind", Json::string(w.kind));
    wl.set("placement", Json::string(w.placement));
    ws.push(std::move(wl));
  }
  doc.set("workloads", std::move(ws));

  doc.set("faults", dump_faults(spec.faults));
  doc.set("chaos", dump_chaos(spec.chaos));
  doc.set("detector", dump_detector(spec.detector));
  doc.set("traffic", dump_traffic(spec.traffic));
  doc.set("slo", dump_slo(spec.slo));

  Json pdes = Json::object();
  pdes.set("threads", Json::number(std::uint64_t{spec.pdes.threads}));
  pdes.set("lookahead_ns", Json::number(spec.pdes.lookahead_ns));
  doc.set("pdes", std::move(pdes));

  Json sw = Json::object();
  sw.set("periods", dump_uint_array(spec.sweep.periods));
  sw.set("lenders", dump_uint_array(spec.sweep.lenders));
  sw.set("borrowers", dump_uint_array(spec.sweep.borrowers));
  sw.set("instances", dump_uint_array(spec.sweep.instances));
  doc.set("sweep", std::move(sw));
  return doc;
}

std::string resolved_json(const ScenarioSpec& spec) {
  return to_json(spec).dump() + "\n";
}

ScenarioSpec paper_two_node() {
  ScenarioSpec spec;
  spec.name = "paper-twonode";
  spec.description =
      "The paper's two-node ThymesisFlow prototype: one borrower, one "
      "lender, 100 Gb/s point-to-point cable, 16 GiB borrowed";
  NodeDecl borrower;
  borrower.name = "borrower";
  borrower.role = Role::kBorrower;
  borrower.with_nic = true;
  NodeDecl lender;
  lender.name = "lender";
  lender.role = Role::kLender;
  lender.with_nic = false;
  spec.nodes = {borrower, lender};
  spec.reservations.push_back(ReservationSpec{});
  spec.workloads.push_back(WorkloadSpec{});
  return spec;
}

ScenarioSpec pooling_1xN(std::uint32_t lenders) {
  ScenarioSpec spec;
  spec.name = "pooling-1xN";
  spec.description =
      "One borrower pooling remote memory striped across N equal lenders "
      "(most-free placement round-robins the chunks)";
  NodeDecl borrower;
  borrower.name = "borrower";
  borrower.role = Role::kBorrower;
  borrower.with_nic = true;
  NodeDecl lender;
  lender.name = "lender";
  lender.role = Role::kLender;
  lender.with_nic = false;
  lender.count = lenders;
  spec.nodes = {borrower, lender};
  spec.policy = "most-free";
  ReservationSpec res;
  res.size_gib = 16;
  res.chunks = lenders;
  res.name = "pooled";
  spec.reservations.push_back(res);
  spec.workloads.push_back(WorkloadSpec{"flow", "remote"});
  spec.sweep.lenders = {1, 2, 4, 8};
  spec.sweep.periods = {1, 10, 100};
  return spec;
}

ScenarioSpec shared_trunk(std::uint32_t borrowers) {
  ScenarioSpec spec;
  spec.name = "shared-trunk";
  spec.description =
      "M borrower-lender pairs on a two-switch dumbbell sharing one trunk "
      "-- M:1 oversubscription, the congestion the paper emulates";
  NodeDecl borrower;
  borrower.name = "borrower";
  borrower.role = Role::kBorrower;
  borrower.with_nic = true;
  borrower.count = borrowers;
  NodeDecl lender;
  lender.name = "lender";
  lender.role = Role::kLender;
  lender.with_nic = false;
  lender.count = borrowers;
  spec.nodes = {borrower, lender};
  spec.topology.kind = TopologyKind::kDumbbell;
  spec.policy = "most-free";
  ReservationSpec res;
  res.size_gib = 4;
  res.name = "trunk-share";
  spec.reservations.push_back(res);
  spec.workloads.push_back(WorkloadSpec{"flow", "remote"});
  spec.sweep.borrowers = {1, 2, 4, 8};
  spec.sweep.periods = {1};
  return spec;
}

ScenarioSpec leafspine_rack(std::uint32_t borrowers) {
  ScenarioSpec spec;
  spec.name = "leafspine-rack";
  spec.description =
      "M borrower-lender pairs across a 2-tier leaf/spine fabric; partners "
      "sit on different leaves so every access ECMP-stripes over the spines "
      "-- the contention cliff moves out by the spine count vs one trunk";
  NodeDecl borrower;
  borrower.name = "borrower";
  borrower.role = Role::kBorrower;
  borrower.with_nic = true;
  borrower.count = borrowers;
  NodeDecl lender;
  lender.name = "lender";
  lender.role = Role::kLender;
  lender.with_nic = false;
  lender.count = borrowers;
  spec.nodes = {borrower, lender};
  spec.topology.kind = TopologyKind::kLeafSpine;
  spec.topology.leaves = 8;
  spec.topology.spines = 4;
  spec.topology.uplink = spec.topology.link;
  spec.policy = "most-free";
  ReservationSpec res;
  res.size_gib = 4;
  res.name = "rack-share";
  spec.reservations.push_back(res);
  spec.workloads.push_back(WorkloadSpec{"flow", "remote"});
  spec.sweep.borrowers = {16, 32, 64, 128, 256};
  spec.sweep.periods = {1};
  spec.pdes.threads = 8;
  return spec;
}

ScenarioSpec serving_diurnal() {
  ScenarioSpec spec;
  spec.name = "serving-diurnal";
  spec.description =
      "Redis-style serving tier on the 8x4 leaf/spine rack: two tenants "
      "(3:1 QoS weights) offer a diurnal open-loop load against p50/p99/p999 "
      "SLOs; lender0 is killed at mid-cycle, forcing both tenants onto the "
      "survivor where credit-based QoS arbitrates the crunch";
  NodeDecl borrower;
  borrower.name = "borrower";
  borrower.role = Role::kBorrower;
  borrower.with_nic = true;
  borrower.count = 8;
  NodeDecl lender;
  lender.name = "lender";
  lender.role = Role::kLender;
  lender.with_nic = false;
  lender.count = 2;
  spec.nodes = {borrower, lender};
  spec.topology.kind = TopologyKind::kLeafSpine;
  spec.topology.leaves = 8;
  spec.topology.spines = 4;
  spec.policy = "slo-aware";
  spec.workloads.push_back(WorkloadSpec{"openloop", "remote"});
  spec.pdes.threads = 8;

  spec.traffic.process = "diurnal";
  spec.traffic.rate_rps = 1.2e6;
  spec.traffic.clients = 2'000'000;
  spec.traffic.seed = 20260808;
  spec.traffic.duration_us = 20'000.0;   // one diurnal cycle
  spec.traffic.diurnal_period_us = 20'000.0;
  spec.traffic.diurnal_amplitude = 0.6;
  spec.traffic.timeout_us = 200.0;
  spec.traffic.lender_capacity_rps = 1.5e6;
  spec.traffic.qos_window_us = 100.0;
  spec.traffic.tenants.push_back(TrafficTenantSpec{"frontend", 3, 0.75});
  spec.traffic.tenants.push_back(TrafficTenantSpec{"batch", 1, 0.25});

  spec.slo.p50_us = 10.0;
  spec.slo.p99_us = 40.0;
  spec.slo.p999_us = 120.0;
  spec.slo.window_us = 1000.0;

  spec.faults.kill_lender = "lender0";
  spec.faults.kill_at_us = 10'000.0;  // the diurnal peak
  return spec;
}

ScenarioSpec chaos_rack() {
  ScenarioSpec spec = serving_diurnal();
  spec.name = "chaos-rack";
  spec.description =
      "Gray-failure chaos drill on the serving rack: lender0 turns gray (6x "
      "service inflation) at the ramp, a leaf0->spine1 port browns out, and "
      "spine2 is killed outright; the online health detector re-stripes and "
      "migrates sources before the timeout budget burns down";
  // Steady offered load (no diurnal swing) so every p99 excursion in the
  // bench is attributable to a chaos window, not the arrival process.  The
  // rate is sized so the gray lender stays *below* its inflated capacity:
  // a true gray failure serves every request, just slowly -- queueing
  // pushes p99 far past target while staying under the 200us timeout, so
  // the timeout-only baseline never reacts and rides out the whole window.
  spec.traffic.process = "poisson";
  spec.traffic.rate_rps = 2.0e5;
  spec.traffic.duration_us = 16'000.0;
  spec.traffic.seed = 20260808;
  spec.faults.kill_lender.clear();  // chaos timeline drives all failures
  spec.faults.kill_at_us = 0.0;

  // The bench scores each chaos event by how many SLO windows stay
  // p99-degraded; 500us windows give ~100 outcomes per window at this rate.
  // The p99 bar sits between the healthy plateau (~6us round-trips) and the
  // gray lender's queueing plateau (~25-30us), so a window is degraded for
  // exactly as long as traffic still rides the gray lender.
  spec.slo.window_us = 500.0;
  spec.slo.p99_us = 20.0;

  // 6x inflation: gray round-trips run ~5x the healthy baseline -- far
  // past latency_threshold (sick in a handful of completions) and past
  // rejoin_margin even when the lender idles under probe-only load, yet
  // comfortably inside the request timeout.
  spec.chaos.seed = 7;
  spec.chaos.events = {
      {2'000.0, ChaosKind::kGrayLender, "lender0", 6.0, 0.0},
      {6'000.0, ChaosKind::kRecover, "lender0", 0.0, 0.0},
      {8'000.0, ChaosKind::kBrownoutPort, "leaf0:spine1", 0.25, 2'000.0},
      {11'000.0, ChaosKind::kKillSwitch, "spine2", 0.0, 0.0},
      {14'000.0, ChaosKind::kRecover, "spine2", 0.0, 0.0},
  };
  spec.detector.enabled = true;
  return spec;
}

std::optional<ScenarioSpec> builtin(const std::string& name) {
  if (name == "paper_twonode") return paper_two_node();
  if (name == "pooling_1xN") return pooling_1xN();
  if (name == "trunk_contention") return shared_trunk();
  if (name == "leafspine_rack128") return leafspine_rack();
  if (name == "serving_diurnal") return serving_diurnal();
  if (name == "chaos_rack") return chaos_rack();
  return std::nullopt;
}

}  // namespace tfsim::scenario
