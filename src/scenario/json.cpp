#include "scenario/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace tfsim::scenario {

namespace {

/// Canonical number rendering: integers without a decimal point, floats
/// with enough digits to round-trip.
std::string render_number(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Trim to the shortest representation that round-trips.
  for (int prec = 1; prec < 17; ++prec) {
    char trial[40];
    std::snprintf(trial, sizeof(trial), "%.*g", prec, v);
    if (std::strtod(trial, nullptr) == v) return trial;
  }
  return buf;
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw JsonError("json: " + msg + " at line " + std::to_string(line) +
                    ":" + std::to_string(col));
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  char take() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_++];
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '/') {
        // Allow // line comments: scenario files are hand-edited configs.
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  void expect_literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        fail(std::string("expected '") + lit + "'");
      }
      ++pos_;
    }
  }

  Json parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json::string(parse_string());
      case 't': expect_literal("true"); return Json::boolean(true);
      case 'f': expect_literal("false"); return Json::boolean(false);
      case 'n': expect_literal("null"); return Json::null();
      default: return parse_number();
    }
  }

  std::string parse_string() {
    if (take() != '"') fail("expected '\"'");
    std::string out;
    while (true) {
      const char c = take();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char e = take();
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = take();
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // UTF-8 encode (basic multilingual plane only; no surrogates).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(peek()))) fail("expected a value");
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) fail("digit expected after '.'");
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) fail("digit expected in exponent");
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    const std::string tok = text_.substr(start, pos_ - start);
    Json v = Json::number(std::strtod(tok.c_str(), nullptr));
    return v;
  }

  Json parse_array() {
    take();  // '['
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push(parse_value());
      skip_ws();
      const char c = take();
      if (c == ']') return arr;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  Json parse_object() {
    take();  // '{'
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected string key in object");
      std::string key = parse_string();
      if (obj.has(key)) fail("duplicate key \"" + key + "\"");
      skip_ws();
      if (take() != ':') fail("expected ':' after object key");
      obj.set(key, parse_value());
      skip_ws();
      const char c = take();
      if (c == '}') return obj;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::boolean(bool b) {
  Json j;
  j.kind_ = Kind::kBool;
  j.bool_ = b;
  return j;
}

Json Json::number(double v) {
  Json j;
  j.kind_ = Kind::kNumber;
  j.num_ = v;
  j.raw_num_ = render_number(v);
  return j;
}

Json Json::number(std::int64_t v) { return number(static_cast<double>(v)); }
Json Json::number(std::uint64_t v) { return number(static_cast<double>(v)); }

Json Json::string(std::string s) {
  Json j;
  j.kind_ = Kind::kString;
  j.str_ = std::move(s);
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

bool Json::as_bool() const {
  if (kind_ != Kind::kBool) throw JsonError("json: expected a boolean");
  return bool_;
}

double Json::as_double() const {
  if (kind_ != Kind::kNumber) throw JsonError("json: expected a number");
  return num_;
}

std::int64_t Json::as_int() const {
  const double v = as_double();
  if (v != std::floor(v)) throw JsonError("json: expected an integer");
  return static_cast<std::int64_t>(v);
}

std::uint64_t Json::as_uint() const {
  const double v = as_double();
  if (v != std::floor(v) || v < 0) {
    throw JsonError("json: expected a non-negative integer");
  }
  return static_cast<std::uint64_t>(v);
}

const std::string& Json::as_string() const {
  if (kind_ != Kind::kString) throw JsonError("json: expected a string");
  return str_;
}

const Json::Array& Json::items() const {
  if (kind_ != Kind::kArray) throw JsonError("json: expected an array");
  return arr_;
}

const Json::Object& Json::members() const {
  if (kind_ != Kind::kObject) throw JsonError("json: expected an object");
  return obj_;
}

const Json* Json::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Json& Json::set(const std::string& key, Json value) {
  if (kind_ != Kind::kObject) throw JsonError("json: set() on non-object");
  for (auto& [k, v] : obj_) {
    if (k == key) {
      v = std::move(value);
      return v;
    }
  }
  obj_.emplace_back(key, std::move(value));
  return obj_.back().second;
}

Json& Json::push(Json value) {
  if (kind_ != Kind::kArray) throw JsonError("json: push() on non-array");
  arr_.push_back(std::move(value));
  return arr_.back();
}

namespace {
void dump_string(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}
}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const std::string pad = pretty ? std::string(static_cast<std::size_t>(indent) *
                                               (static_cast<std::size_t>(depth) + 1), ' ')
                                 : std::string();
  const std::string close_pad =
      pretty ? std::string(static_cast<std::size_t>(indent) *
                           static_cast<std::size_t>(depth), ' ')
             : std::string();
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kNumber: out += raw_num_.empty() ? render_number(num_) : raw_num_; break;
    case Kind::kString: dump_string(out, str_); break;
    case Kind::kArray: {
      if (arr_.empty()) {
        out += "[]";
        break;
      }
      // Arrays of scalars stay on one line even in pretty mode.
      bool scalar = true;
      for (const auto& v : arr_) {
        if (v.is_array() || v.is_object()) scalar = false;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i > 0) out.push_back(',');
        if (pretty && !scalar) {
          out.push_back('\n');
          out += pad;
        } else if (i > 0 && pretty) {
          out.push_back(' ');
        }
        arr_[i].dump_to(out, scalar ? -1 : indent, depth + 1);
      }
      if (pretty && !scalar) {
        out.push_back('\n');
        out += close_pad;
      }
      out.push_back(']');
      break;
    }
    case Kind::kObject: {
      if (obj_.empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i > 0) out.push_back(',');
        if (pretty) {
          out.push_back('\n');
          out += pad;
        }
        dump_string(out, obj_[i].first);
        out += pretty ? ": " : ":";
        obj_[i].second.dump_to(out, indent, depth + 1);
      }
      if (pretty) {
        out.push_back('\n');
        out += close_pad;
      }
      out.push_back('}');
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

}  // namespace tfsim::scenario
