// Declarative scenario layer: everything needed to assemble an N-node
// disaggregation testbed as data instead of code.
//
// A ScenarioSpec names the nodes (roles, DRAM, NIC), the topology joining
// them (direct full-mesh links or a two-switch dumbbell with a shared
// trunk), the delay injector, the remote-memory reservations (with the
// control-plane placement policy, and optional striping across lenders),
// workload bindings, and sweep axes.  Specs are buildable programmatically
// (the builders below) or loadable from a small JSON file under
// scenarios/ -- the same config-driven approach rack-scale simulators such
// as DRackSim and CXL-ClusterSim use to cover many cluster shapes without
// baked-in topologies.  node::Cluster turns a spec into a live testbed.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mem/dram.hpp"
#include "net/fault.hpp"
#include "net/latency_dist.hpp"
#include "net/link.hpp"
#include "net/switch.hpp"
#include "nic/nic.hpp"
#include "scenario/json.hpp"
#include "sim/units.hpp"

namespace tfsim::scenario {

enum class Role { kBorrower, kLender };

std::string to_string(Role role);
Role parse_role(const std::string& name);

/// One node *template*: `count` > 1 expands into count nodes named
/// "<name>0".."<name>N-1" (a single node keeps the bare name).
struct NodeDecl {
  std::string name = "node";
  Role role = Role::kLender;
  std::uint32_t count = 1;
  mem::DramConfig dram;  ///< AC922 defaults: 512 GiB, 140 GB/s, 95 ns
  /// Borrower-capable (has the FPGA card).  Defaults from the role.
  std::optional<bool> with_nic;
  nic::NicConfig nic;  ///< window 129, 320 MHz, PERIOD 1

  bool nic_enabled() const {
    return with_nic.value_or(role == Role::kBorrower);
  }
};

enum class TopologyKind {
  kDirect,    ///< full-mesh borrower <-> lender point-to-point cables
  kDumbbell,  ///< borrowers -- switchA == shared trunk == switchB -- lenders
  kLeafSpine, ///< 2-tier fabric: hosts -- L leaves == S spines (ECMP-striped)
};

std::string to_string(TopologyKind kind);
TopologyKind parse_topology_kind(const std::string& name);

struct TopologySpec {
  TopologyKind kind = TopologyKind::kDirect;
  net::LinkConfig link;    ///< direct cables / host <-> switch edge hops
  net::LinkConfig trunk;   ///< dumbbell only: the shared switch-switch hop
  net::LinkConfig uplink;  ///< leaf_spine only: the leaf <-> spine hops
  std::uint32_t leaves = 2;   ///< leaf_spine only
  std::uint32_t spines = 2;   ///< leaf_spine only
  net::SwitchConfig sw;       ///< egress queue policy for every switch

  /// Fabric nodes the topology adds beyond the declared hosts (the Cluster
  /// sizes its PDES partition as expanded_node_count() + switch_count()).
  std::uint32_t switch_count() const {
    switch (kind) {
      case TopologyKind::kDirect: return 0;
      case TopologyKind::kDumbbell: return 2;
      case TopologyKind::kLeafSpine: return leaves + spines;
    }
    return 0;
  }
};

/// Delay-injection settings applied to every borrower NIC at build time.
struct InjectorSpec {
  std::uint64_t period = 1;  ///< PERIOD gate; 1 = vanilla ThymesisFlow
  /// Distribution-mode injection (overrides `period` when set).
  std::optional<net::DistKind> dist_kind;
  double dist_mean_us = 0.0;
  std::uint64_t dist_seed = 42;
};

/// One remote-memory reservation request.  `borrower` empty = applies to
/// every borrower node.  `chunks` > 1 splits the size into equal chunks
/// reserved one at a time through the placement policy -- with "most-free"
/// and equally-sized lenders this stripes the region across lenders
/// round-robin (interleaved 1-borrower-N-lender pooling).
struct ReservationSpec {
  std::string borrower;
  std::uint64_t size_gib = 16;
  std::uint32_t chunks = 1;
  std::string name = "thymesisflow-borrowed";
};

/// Deterministic fault injection: every fabric link gets loss, corruption
/// and flap scheduling from one seeded FaultConfig (per-link streams are
/// split off the seed, so the pattern is a pure function of the spec), plus
/// an optional mid-run lender kill.  Defaults = pristine fabric.
struct FaultSpec {
  net::FaultConfig link;
  std::string kill_lender;  ///< expanded node name ("lender0"); "" = none
  double kill_at_us = 0.0;  ///< the lender stops responding from here on

  bool enabled() const { return link.enabled() || !kill_lender.empty(); }
};

/// Fabric chaos event kinds (the scripted gray-failure timeline).
enum class ChaosKind {
  kKillSwitch,    ///< the named switch hard-drops every frame
  kBrownoutPort,  ///< one switch egress port degrades ("switch:neighbor")
  kGrayLender,    ///< the named lender serves, but `factor`x slower
  kRecover,       ///< close the target's most recent open window
};

std::string to_string(ChaosKind kind);
ChaosKind parse_chaos_kind(const std::string& name);

/// One scripted chaos event.  `target` is a switch name suffix ("spine1"),
/// a "switch:neighbor" egress port ("leaf0:spine1"), or an expanded lender
/// name ("lender0").  `factor` is the brownout bandwidth factor in [0, 1)
/// or the gray-lender service inflation (> 1); unused for kill/recover.
/// `for_us` > 0 bounds the window without a matching recover event.
struct ChaosEventSpec {
  double at_us = 0.0;
  ChaosKind kind = ChaosKind::kKillSwitch;
  std::string target;
  double factor = 0.0;
  double for_us = 0.0;

  friend bool operator==(const ChaosEventSpec&,
                         const ChaosEventSpec&) = default;
};

/// The scripted chaos timeline.  Events must be listed in non-decreasing
/// at_us order; resolve_chaos() turns them into closed windows and rejects
/// malformed timelines (unmatched recover, overlapping windows on one
/// target, out-of-range factors).
struct ChaosSpec {
  std::uint64_t seed = 1;  ///< gray-lender jitter stream seed
  std::vector<ChaosEventSpec> events;

  bool enabled() const { return !events.empty(); }
};

/// One resolved chaos window: [start, end) of a non-recover event.  An
/// event never closed (no recover, no for_us) runs to sim::kTimeNever.
struct ChaosWindow {
  ChaosKind kind = ChaosKind::kKillSwitch;
  std::string target;
  sim::Time start = 0;
  sim::Time end = 0;
  double factor = 0.0;
};

/// Validate the timeline and resolve it into per-target windows (stable
/// event order).  Throws std::invalid_argument naming the offending event
/// index.  node::Cluster applies the switch windows at assembly;
/// core/run_serving applies the gray-lender windows; bench/chaos_mttr
/// scores recovery per window.
std::vector<ChaosWindow> resolve_chaos(const ChaosSpec& chaos);

/// Online gray-failure detector settings (ctrl/health.hpp) for the serving
/// loop.  Disabled by default: the baseline behavior is timeout-driven
/// failover only, which is exactly what bench/chaos_mttr compares against.
struct DetectorSpec {
  bool enabled = false;
  double alpha = 0.3;
  double latency_threshold = 3.0;
  double timeout_weight = 10.0;
  std::uint32_t warmup = 16;
  std::uint32_t confirm = 3;
  /// After migrating off a sick primary, every Nth dispatch probes it.
  std::uint32_t probe_interval = 16;
  /// A probe is "good" when it completes within rejoin_margin x the healthy
  /// baseline snapshot -- deliberately tighter than latency_threshold, so a
  /// lender that is merely less gray does not win the traffic back.
  double rejoin_margin = 1.5;
  /// Consecutive good probes before the source rejoins its recovered
  /// primary.
  std::uint32_t rejoin_confirm = 3;

  friend bool operator==(const DetectorSpec&, const DetectorSpec&) = default;
};

/// A workload binding: which driver a scenario-driven bench should run on
/// each borrower and where its arrays live.
struct WorkloadSpec {
  std::string kind = "stream";       ///< stream | bfs | sssp | redis | flow
  std::string placement = "remote";  ///< local | remote | auto
};

/// One tenant in the serving traffic mix: a named slice of the aggregate
/// offered rate with a QoS weight (ctrl/qos.hpp credits at the lender).
struct TrafficTenantSpec {
  std::string name = "default";
  std::uint32_t weight = 1;
  double rate_share = 1.0;  ///< fraction of traffic.rate_rps this tenant offers
};

/// Open-loop serving traffic (workloads/openloop): arrivals occur at the
/// configured rate regardless of service progress, split evenly over the
/// borrower nodes and across tenants by rate_share.  Disabled when
/// `process` is empty.
struct TrafficSpec {
  std::string process;           ///< "" | "poisson" | "bursty" | "diurnal"
  double rate_rps = 0.0;         ///< aggregate offered rate, requests/sec
  std::uint64_t clients = 0;     ///< modeled client population (reporting)
  std::uint64_t seed = 1;        ///< per-source streams are split off this
  std::uint32_t max_in_flight = 64;   ///< dispatch window per source
  std::uint32_t queue_depth = 128;    ///< waiting room per source
  double duration_us = 0.0;      ///< arrival horizon (one diurnal cycle)
  double timeout_us = 200.0;     ///< per-request timeout (0 = wait forever)
  std::uint64_t req_bytes = 128;     ///< wire size of a request frame
  std::uint64_t resp_bytes = 1024;   ///< wire size of a response frame
  double burst_on_us = 100.0;    ///< bursty: on-phase length
  double burst_off_us = 300.0;   ///< bursty: off-phase length
  double diurnal_period_us = 10'000.0;  ///< diurnal: one simulated "day"
  double diurnal_amplitude = 0.8;       ///< diurnal: rate swing in [0,1]
  /// Lender service capacity, requests/sec; 0 = uncapped (no QoS gate, no
  /// service queueing — responses leave as fast as frames arrive).
  double lender_capacity_rps = 0.0;
  double qos_window_us = 100.0;  ///< QoS credit refill window
  double tenant_gib = 1.0;       ///< bytes booked per tenant at its lender
  /// Consecutive timeouts before a source retargets its next failover
  /// lender (reactive re-placement along the precomputed chain).
  std::uint32_t failover_threshold = 4;
  std::vector<TrafficTenantSpec> tenants;  ///< empty = one default tenant

  bool enabled() const { return !process.empty(); }
};

/// Declared SLO targets the tail tracker (core/slo.hpp) scores windows
/// against.  A target of 0 leaves that percentile unconstrained.
struct SloSpec {
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  double window_us = 1000.0;  ///< compliance-scoring window length
};

/// Intra-run parallelism (sim/pdes.hpp): partition the engine into one
/// calendar per node and run barrier windows on `threads` workers.  The
/// TFSIM_PDES env var overrides the scenario at build time ("off" forces
/// serial, N forces N workers).  Lookahead 0 derives the horizon from the
/// fabric's minimum link propagation — the only always-sound choice; set
/// it explicitly only to *shrink* the window below that bound.
struct PdesSpec {
  std::uint32_t threads = 0;   ///< 0 = classic single-calendar engine
  double lookahead_ns = 0.0;   ///< 0 = net::Network::min_propagation()

  bool enabled() const { return threads > 0; }
};

/// Sweep axes a scenario can pin; empty = the bench's built-in default.
struct SweepSpec {
  std::vector<std::uint64_t> periods;
  std::vector<std::uint32_t> lenders;    ///< lender-count axis (pooling)
  std::vector<std::uint32_t> borrowers;  ///< borrower-count axis (trunk)
  std::vector<std::uint32_t> instances;  ///< per-node workload instances
};

struct ScenarioSpec {
  std::string name = "scenario";
  std::string description;
  std::vector<NodeDecl> nodes;
  TopologySpec topology;
  InjectorSpec injector;
  /// Control-plane lender-selection policy (ctrl::make_policy name).
  std::string policy = "first-fit";
  std::vector<ReservationSpec> reservations;
  std::vector<WorkloadSpec> workloads;
  FaultSpec faults;
  ChaosSpec chaos;
  DetectorSpec detector;
  TrafficSpec traffic;
  SloSpec slo;
  PdesSpec pdes;
  SweepSpec sweep;

  const NodeDecl* find_node(const std::string& name) const;
  /// Total declared nodes after count-expansion.
  std::uint32_t expanded_node_count() const;
  /// Set the count of every lender-role (resp. borrower-role) declaration;
  /// used by benches sweeping cluster size.
  void set_lender_count(std::uint32_t count);
  void set_borrower_count(std::uint32_t count);
};

// --- JSON (schema documented in DESIGN.md section 9) -----------------------

/// Parse a scenario document; throws JsonError on syntax errors, unknown
/// keys (so files cannot rot silently), or invalid values.
ScenarioSpec from_json(const Json& doc);
ScenarioSpec parse(const std::string& text);
/// Load from a file; throws std::runtime_error when unreadable.
ScenarioSpec load_file(const std::string& path);

/// Serialize the *resolved* spec -- every field explicit, defaults filled
/// in -- for provenance echoes next to result CSVs.  from_json(to_json(s))
/// reproduces s exactly.
Json to_json(const ScenarioSpec& spec);
std::string resolved_json(const ScenarioSpec& spec);

// --- built-in scenarios ----------------------------------------------------

/// The paper's two-node ThymesisFlow prototype (== node::thymesisflow_testbed).
ScenarioSpec paper_two_node();
/// 1 borrower pooling memory from `lenders` equal lenders, reservation
/// striped across all of them (most-free placement).
ScenarioSpec pooling_1xN(std::uint32_t lenders = 4);
/// `borrowers` borrower-lender pairs sharing one dumbbell trunk.
ScenarioSpec shared_trunk(std::uint32_t borrowers = 4);
/// `borrowers` borrower-lender pairs spread over a rack-scale leaf/spine
/// fabric (8 leaves x 4 spines at the default 128 pairs); partners land on
/// different leaves so every access crosses a spine.
ScenarioSpec leafspine_rack(std::uint32_t borrowers = 128);
/// Redis-style serving tier on the 8x4 rack: two tenants (3:1 QoS weights)
/// offering a diurnal open-loop load against declared p50/p99/p999 SLOs,
/// with a lender killed mid-cycle to exercise reactive re-placement.
ScenarioSpec serving_diurnal();
/// Gray-failure chaos drill on the serving rack: the diurnal serving tier
/// with a scripted timeline -- a gray lender (8x service inflation), a
/// spine-port brownout, and a killed spine -- and the online detector
/// enabled so sources re-stripe/migrate before timeouts exhaust the retry
/// budget.  bench/chaos_mttr runs it with the detector on and off.
ScenarioSpec chaos_rack();

/// Look up a built-in by its scenario file stem ("paper_twonode",
/// "pooling_1xN", "trunk_contention", "leafspine_rack128"); nullopt when
/// unknown.
std::optional<ScenarioSpec> builtin(const std::string& name);

}  // namespace tfsim::scenario
