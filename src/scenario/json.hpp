// Minimal JSON value + recursive-descent parser for scenario files.
//
// Deliberately tiny and dependency-free: scenario files are small,
// hand-written configuration documents, so the parser favours precise
// error messages (line/column in every exception) over speed.  Supports
// the full JSON grammar except \uXXXX escapes beyond Latin-1; numbers are
// held as double plus the raw token so integers survive a round trip.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace tfsim::scenario {

/// Thrown on malformed input; .what() includes line:column.
class JsonError : public std::runtime_error {
 public:
  explicit JsonError(const std::string& what) : std::runtime_error(what) {}
};

class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Object members keep insertion order so a dump() round-trips a file in
  /// the author's order (and deterministically).
  using Array = std::vector<Json>;
  using Member = std::pair<std::string, Json>;
  using Object = std::vector<Member>;

  Json() = default;
  static Json null() { return Json(); }
  static Json boolean(bool b);
  static Json number(double v);
  static Json number(std::int64_t v);
  static Json number(std::uint64_t v);
  static Json string(std::string s);
  static Json array();
  static Json object();

  /// Parse a complete document; throws JsonError on any syntax error or
  /// trailing garbage.
  static Json parse(const std::string& text);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; throw JsonError (with the member path unknown to the
  /// caller, so include context yourself) on kind mismatch.
  bool as_bool() const;
  double as_double() const;
  std::int64_t as_int() const;
  std::uint64_t as_uint() const;
  const std::string& as_string() const;
  const Array& items() const;
  const Object& members() const;

  // --- object helpers ---------------------------------------------------
  /// Member lookup; nullptr when absent (or not an object).
  const Json* find(const std::string& key) const;
  bool has(const std::string& key) const { return find(key) != nullptr; }
  /// Insert or replace a member (builder API).
  Json& set(const std::string& key, Json value);

  // --- array helpers ----------------------------------------------------
  Json& push(Json value);

  /// Serialize.  indent < 0: compact one-liner; otherwise pretty-printed
  /// with that many spaces per level.  Deterministic (insertion order).
  std::string dump(int indent = 2) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string raw_num_;  ///< original token (or canonical form) for dump()
  std::string str_;
  Array arr_;
  Object obj_;

  void dump_to(std::string& out, int indent, int depth) const;
};

}  // namespace tfsim::scenario
