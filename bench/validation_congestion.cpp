// Validation of the paper's premise (§II-B, §III): real switched-network
// congestion manifests as increased remote-memory latency, and constant
// delay injection is a faithful emulation of its *mean* -- but not of its
// tail, which is the gap the paper's future-work (distribution-driven
// injection) closes.
//
// Setup: a two-switch dumbbell where K borrower-lender pairs share one
// trunk.  Pair 0 is the probe; the other K-1 pairs stream at full tilt.
// For each K we report the probe's latency mean/p99, then configure the
// point-to-point testbed's injector to the PERIOD that matches the
// congested mean and compare distributions.
#include <benchmark/benchmark.h>

#include <cmath>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "core/report.hpp"
#include "mem/dram.hpp"
#include "net/topology.hpp"
#include "nic/nic.hpp"
#include "node/testbed.hpp"
#include "sim/engine.hpp"
#include "workloads/stream/stream_flow.hpp"

using namespace tfsim;

namespace {

constexpr int kPairCounts[] = {1, 2, 4, 8};

struct Row {
  int pairs;
  double mean_us;
  double p99_us;
  double injected_mean_us;  ///< two-node testbed with matched PERIOD
  double injected_p99_us;
};
std::vector<Row> g_rows;

struct CongestedProbe {
  double mean_us = 0;
  double p99_us = 0;
};

/// Probe latency with `pairs` active borrower-lender pairs on the dumbbell.
CongestedProbe run_congested(int pairs) {
  sim::Engine engine;
  net::Network network;
  net::StarTopologyConfig tcfg;
  tcfg.pairs = static_cast<std::uint32_t>(pairs);
  const auto topo = net::StarTopology::build(network, tcfg);

  std::vector<std::unique_ptr<mem::Dram>> drams;
  std::vector<std::unique_ptr<nic::DisaggNic>> nics;
  std::vector<std::unique_ptr<workloads::RemoteStreamFlow>> flows;
  const sim::Time horizon = sim::from_ms(10.0);

  for (int i = 0; i < pairs; ++i) {
    drams.push_back(std::make_unique<mem::Dram>(mem::DramConfig{}));
    auto nic = std::make_unique<nic::DisaggNic>(
        nic::NicConfig{}, network, topo.borrowers[static_cast<std::size_t>(i)]);
    nic->register_lender(0, topo.lenders[static_cast<std::size_t>(i)],
                         drams.back().get());
    nic->translator().add_segment(
        nic::Segment{mem::Range{1ull << 40, sim::kGiB}, 0, 0, "seg"});
    nic->attach();
    workloads::FlowConfig fcfg;
    // Pair 0 probes with modest parallelism; the rest are bursty heavy
    // hitters (on/off cross-traffic is what gives congestion its tail).
    fcfg.concurrency = i == 0 ? 16 : 128;
    fcfg.base = 1ull << 40;
    fcfg.span_bytes = 512 * sim::kMiB;
    fcfg.stop_at = horizon;
    if (i != 0) {
      fcfg.phase_on = sim::from_us(120.0);
      fcfg.phase_off = sim::from_us(180.0);
      fcfg.seed = 17 + static_cast<std::uint64_t>(i);
    }
    flows.push_back(std::make_unique<workloads::RemoteStreamFlow>(
        engine, *nic, fcfg));
    nics.push_back(std::move(nic));
  }
  for (auto& f : flows) f->start();
  engine.run();

  CongestedProbe probe;
  probe.mean_us = flows[0]->stats().latency_us.mean();
  // OnlineStats has no quantiles; use the NIC histogram for the probe NIC.
  probe.p99_us = nics[0]->latency_us().p99();
  return probe;
}

/// Two-node testbed with the injector PERIOD chosen to match `target_mean`.
CongestedProbe run_injected(double target_mean_us) {
  // Probe latency under PERIOD p with 16-lane concurrency ~ base + queueing;
  // search the PERIOD whose measured mean is closest.
  CongestedProbe best;
  double best_err = 1e300;
  for (std::uint64_t p = 1; p <= 4096; p = p < 8 ? p + 1 : p * 2) {
    node::Testbed tb;
    tb.set_period(p);
    tb.attach_remote();
    workloads::FlowConfig fcfg;
    fcfg.concurrency = 16;
    fcfg.base = tb.remote_base();
    fcfg.span_bytes = 512 * sim::kMiB;
    fcfg.stop_at = sim::from_ms(5.0);
    workloads::RemoteStreamFlow flow(tb.engine(), tb.borrower().nic(), fcfg);
    flow.start();
    tb.engine().run();
    const double mean = flow.stats().latency_us.mean();
    const double err = std::abs(mean - target_mean_us);
    if (err < best_err) {
      best_err = err;
      best.mean_us = mean;
      best.p99_us = tb.borrower().nic().latency_us().p99();
    }
  }
  return best;
}

void BM_Congestion(benchmark::State& state) {
  const int pairs = kPairCounts[state.range(0)];
  for (auto _ : state) {
    const auto congested = run_congested(pairs);
    const auto injected = run_injected(congested.mean_us);
    state.counters["congested_mean_us"] = congested.mean_us;
    state.counters["injected_mean_us"] = injected.mean_us;
    g_rows.push_back(Row{pairs, congested.mean_us, congested.p99_us,
                         injected.mean_us, injected.p99_us});
  }
}
BENCHMARK(BM_Congestion)
    ->DenseRange(0, static_cast<int>(std::size(kPairCounts)) - 1)
    ->Iterations(1)->Unit(benchmark::kMillisecond)->ArgNames({"idx"});

void print_table() {
  core::Table table(
      "Switched-network congestion vs constant delay injection",
      {"active pairs", "congested mean (us)", "congested p99 (us)",
       "matched-injection mean (us)", "matched-injection p99 (us)"});
  for (const auto& r : g_rows) {
    table.row({std::to_string(r.pairs), core::Table::num(r.mean_us, 2),
               core::Table::num(r.p99_us, 2),
               core::Table::num(r.injected_mean_us, 2),
               core::Table::num(r.injected_p99_us, 2)});
  }
  table.print();
  table.to_csv(bench::csv_path("validation_congestion.csv"));
  std::puts("Trunk sharing raises remote-memory latency exactly as the paper"
            " anticipates; constant injection reproduces the congested mean"
            " (validating the methodology) while the congested tail is"
            " heavier -- the gap distribution-mode injection covers.");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_table();
  return 0;
}
