// Figure 2: latency measured by STREAM for varying delay injection.
//
// STREAM runs on the borrower (lender idle) while PERIOD sweeps the
// injector.  The paper observes 1.2-150 us across the sweep -- the
// [0-90th]-percentile of production datacenter network latency -- with a
// strong linear PERIOD-latency correlation (validated in §III-B; we print
// the least-squares fit).
//
// Each PERIOD is an independent Session, so the sweep fans out across
// $TFSIM_JOBS workers; the table/CSV are identical for any worker count.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/report.hpp"
#include "core/session.hpp"
#include "node/testbed.hpp"
#include "sim/config.hpp"
#include "sim/stats.hpp"

using namespace tfsim;

namespace {

const std::vector<std::uint64_t> kPeriods = {1, 2, 5, 10, 20, 50, 100, 200, 400};

struct Row {
  std::uint64_t period = 0;
  double latency_us = 0.0;
  double bandwidth_gbps = 0.0;
};

Row run_point(const node::TestbedSpec& testbed, std::uint64_t period) {
  core::SessionConfig cfg;
  cfg.testbed = testbed;
  cfg.period = period;
  core::Session session(cfg);
  const auto res = session.run_stream(bench::stream_config());
  return Row{period, res.avg_latency_us, res.best_bandwidth_gbps};
}

void print_table(const std::vector<Row>& rows) {
  core::Table table("Figure 2: STREAM-measured latency vs injection PERIOD",
                    {"PERIOD", "latency (us)", "bandwidth (GB/s)"});
  std::vector<double> xs, ys;
  for (const auto& r : rows) {
    table.row({std::to_string(r.period), core::Table::num(r.latency_us, 2),
               core::Table::num(r.bandwidth_gbps, 3)});
    xs.push_back(static_cast<double>(r.period));
    ys.push_back(r.latency_us);
  }
  table.print();
  table.to_csv(bench::csv_path("fig2_stream_latency.csv"));
  const auto fit = sim::linear_fit(xs, ys);
  std::printf("PERIOD-latency linear fit: latency_us = %.4f * PERIOD + %.4f"
              " (R^2 = %.5f; paper reports a strong linear correlation)\n",
              fit.slope, fit.intercept, fit.r2);
  std::printf("latency range across sweep: %.2f - %.2f us (paper: 1.2 - 150 us)\n",
              ys.empty() ? 0.0 : ys.front(), ys.empty() ? 0.0 : ys.back());
}

}  // namespace

int main(int argc, char** argv) {
  sim::ArgParser args(
      "Figure 2: STREAM-measured latency vs injection PERIOD");
  args.add_string("scenario", "paper_twonode",
                  "scenario name (scenarios/<name>.json) or path");
  args.add_string("periods", "", "PERIOD axis override (comma-separated)");
  if (!args.parse(argc, argv)) return 1;

  scenario::ScenarioSpec spec = bench::load_scenario(args.str("scenario"));
  const node::TestbedSpec testbed = node::to_testbed_spec(spec);
  const auto periods = bench::axis_values<std::uint64_t>(
      args.int_list("periods"), spec.sweep.periods, kPeriods);

  const auto rows = bench::run_sweep(
      "fig2_stream_latency", periods,
      [&](std::uint64_t p) { return run_point(testbed, p); });
  print_table(rows);
  spec.sweep.periods = periods;
  bench::echo_scenario(spec, "fig2_stream_latency.csv");
  return 0;
}
