// Figure 2: latency measured by STREAM for varying delay injection.
//
// STREAM runs on the borrower (lender idle) while PERIOD sweeps the
// injector.  The paper observes 1.2-150 us across the sweep -- the
// [0-90th]-percentile of production datacenter network latency -- with a
// strong linear PERIOD-latency correlation (validated in §III-B; we print
// the least-squares fit).
#include <benchmark/benchmark.h>

#include <vector>

#include "bench_common.hpp"
#include "core/report.hpp"
#include "core/session.hpp"
#include "sim/stats.hpp"

using namespace tfsim;

namespace {

constexpr std::uint64_t kPeriods[] = {1, 2, 5, 10, 20, 50, 100, 200, 400};

struct Row {
  std::uint64_t period;
  double latency_us;
  double bandwidth_gbps;
};
std::vector<Row> g_rows;

void BM_StreamLatency(benchmark::State& state) {
  const std::uint64_t period = kPeriods[state.range(0)];
  for (auto _ : state) {
    core::SessionConfig cfg;
    cfg.period = period;
    core::Session session(cfg);
    const auto res = session.run_stream(bench::stream_config());
    state.counters["latency_us"] = res.avg_latency_us;
    state.counters["bw_gbps"] = res.best_bandwidth_gbps;
    g_rows.push_back(Row{period, res.avg_latency_us, res.best_bandwidth_gbps});
  }
}
BENCHMARK(BM_StreamLatency)
    ->DenseRange(0, static_cast<int>(std::size(kPeriods)) - 1)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->ArgNames({"idx"});

void print_table() {
  core::Table table("Figure 2: STREAM-measured latency vs injection PERIOD",
                    {"PERIOD", "latency (us)", "bandwidth (GB/s)"});
  std::vector<double> xs, ys;
  for (const auto& r : g_rows) {
    table.row({std::to_string(r.period), core::Table::num(r.latency_us, 2),
               core::Table::num(r.bandwidth_gbps, 3)});
    xs.push_back(static_cast<double>(r.period));
    ys.push_back(r.latency_us);
  }
  table.print();
  table.to_csv(bench::csv_path("fig2_stream_latency.csv"));
  const auto fit = sim::linear_fit(xs, ys);
  std::printf("PERIOD-latency linear fit: latency_us = %.4f * PERIOD + %.4f"
              " (R^2 = %.5f; paper reports a strong linear correlation)\n",
              fit.slope, fit.intercept, fit.r2);
  std::printf("latency range across sweep: %.2f - %.2f us (paper: 1.2 - 150 us)\n",
              ys.empty() ? 0.0 : ys.front(), ys.empty() ? 0.0 : ys.back());
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_table();
  return 0;
}
