// Chaos MTTR bench: scripted gray failures and fabric chaos over the
// leaf/spine serving rack, scored as blast radius and time-to-recover.
//
// The scenario (scenarios/chaos_rack by default) runs the serving tier
// through a seeded chaos timeline: a gray lender that silently serves 8x
// slower, a browned-out leaf->spine egress port, and a hard spine kill.
// The same scenario runs twice in-process:
//
//   detector on  -- each source runs the ctrl::HealthDetector over its own
//                   completions; latency-dominated sickness re-stripes once
//                   then migrates off the gray lender *before* the timeout
//                   budget burns, and probes rejoin it after recovery;
//   detector off -- the timeout-only baseline: nothing moves until
//                   `failover_threshold` consecutive 200us timeouts.
//
// Every non-recover chaos event is scored against the SLO window series:
// the p99-degradation window (total length of consecutive SLO windows from
// the event start whose p99 misses target or which complete nothing),
// time-to-recover (event start -> first compliant window), and blast
// radius (failed + shed + rejected inside the degraded windows).  The
// headline acceptance is that the detector path recovers from the gray
// lender with a *strictly* shorter p99-degradation window than the
// timeout-only baseline -- that delta is the entire point of online
// failure detection.
//
// The digest is the determinism contract: chaos is resolved into read-only
// windows at assembly and every detector/probe decision is per-source
// local state, so a serial run must be byte-identical to a TFSIM_PDES=8
// run; when the environment asks for >1 worker the bench re-runs serially
// in-process and aborts on divergence.
//
// Sizing: TFSIM_SERVING_US compresses the horizon, scaling the chaos
// timeline, the SLO windows, and any lender kill proportionally so the
// experiment keeps its shape.  Results land in chaos_mttr.csv plus
// BENCH_chaos.json (the CI artifact), alongside the resolved scenario.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/report.hpp"
#include "core/serving.hpp"
#include "node/cluster.hpp"
#include "scenario/scenario.hpp"
#include "sim/config.hpp"
#include "sim/pdes.hpp"
#include "sim/units.hpp"

using namespace tfsim;

namespace {

core::ServingReport run_once(scenario::ScenarioSpec spec, unsigned threads) {
  spec.pdes.threads = threads;
  node::Cluster cluster(spec);
  return core::run_serving(cluster);
}

/// Per chaos event: how long the windowed p99 stayed out of spec and what
/// it cost while it was.
struct EventScore {
  std::string label;        ///< "kind/target"
  double start_us = 0.0;    ///< event start in sim time
  double degraded_us = 0.0; ///< sum of degraded SLO-window lengths
  double ttr_us = 0.0;      ///< event start -> first compliant window
  std::uint64_t blast = 0;  ///< failed + shed + rejected while degraded
  bool recovered = false;   ///< a compliant window exists before horizon
};

/// Walk the SLO window series from the event start to the first compliant
/// window (p99 within target and at least one completion).  Degradation
/// caused by a *later* event is attributed to that event, not this one,
/// because the walk stops at the first recovery.
EventScore score_event(const scenario::ChaosWindow& ev,
                       const core::ServingReport& r, double window_us,
                       double horizon_us) {
  EventScore s;
  s.label = scenario::to_string(ev.kind) + "/" + ev.target;
  s.start_us = sim::to_us(ev.start);
  for (const core::WindowStats& w : r.windows) {
    const double ws = sim::to_us(w.start);
    if (ws + window_us <= s.start_us) continue;  // ends before the event
    const bool compliant =
        w.completed > 0 &&
        (r.targets.p99_us <= 0.0 || w.p99_us <= r.targets.p99_us);
    if (compliant) {
      s.recovered = true;
      s.ttr_us = std::max(0.0, ws - s.start_us);
      return s;
    }
    s.degraded_us += window_us;
    s.blast += w.failed + w.shed + w.rejected;
  }
  s.ttr_us = horizon_us - s.start_us;
  return s;
}

void write_bench_json(const std::string& path,
                      const scenario::ScenarioSpec& spec, unsigned threads,
                      const core::ServingReport& on,
                      const core::ServingReport& off,
                      const std::vector<EventScore>& on_scores,
                      const std::vector<EventScore>& off_scores) {
  std::ofstream out(path);
  out << "{\n  \"context\": {\"bench\": \"chaos_mttr\", \"scenario\": \""
      << spec.name << "\", \"duration_us\": " << spec.traffic.duration_us
      << ", \"pdes_threads\": " << threads << ", \"digest_detector\": \""
      << on.digest << "\", \"digest_baseline\": \"" << off.digest
      << "\"},\n  \"benchmarks\": [\n";
  const auto totals = [&out](const char* mode, const core::ServingReport& r) {
    out << "    {\"name\": \"chaos/" << mode
        << "/totals\", \"offered\": " << r.totals.offered
        << ", \"completed\": " << r.totals.completed
        << ", \"shed\": " << r.totals.shed
        << ", \"rejected\": " << r.totals.rejected
        << ", \"failed\": " << r.totals.failed
        << ", \"failovers\": " << r.failovers
        << ", \"restripes\": " << r.restripes << ", \"rejoins\": " << r.rejoins
        << ", \"gray_inflated\": " << r.gray_inflated
        << ", \"chaos_drops\": " << r.switch_chaos_drops
        << ", \"windows_met\": " << r.windows_met
        << ", \"windows\": " << r.windows.size()
        << ", \"p99_us\": " << r.overall.p99() << "},\n";
  };
  totals("detector", on);
  totals("baseline", off);
  const auto events = [&out](const char* mode,
                             const std::vector<EventScore>& scores,
                             bool last_block) {
    for (std::size_t i = 0; i < scores.size(); ++i) {
      const EventScore& s = scores[i];
      out << "    {\"name\": \"chaos/" << mode << "/" << s.label
          << "\", \"start_us\": " << s.start_us
          << ", \"degraded_us\": " << s.degraded_us
          << ", \"ttr_us\": " << s.ttr_us << ", \"blast\": " << s.blast
          << ", \"recovered\": " << (s.recovered ? 1 : 0) << "}"
          << (last_block && i + 1 == scores.size() ? "\n" : ",\n");
    }
  };
  events("detector", on_scores, false);
  events("baseline", off_scores, true);
  out << "  ]\n}\n";
  std::printf("bench JSON -> %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  sim::ArgParser args(
      "Chaos MTTR: gray failures and fabric chaos, detector vs timeout-only");
  args.add_string("scenario", "chaos_rack",
                  "scenario name (scenarios/<name>.json) or path");
  if (!args.parse(argc, argv)) return 1;

  scenario::ScenarioSpec spec = bench::load_scenario(args.str("scenario"));
  if (!spec.traffic.enabled()) {
    std::fprintf(stderr,
                 "error: scenario \"%s\" has no traffic block; chaos_mttr "
                 "needs open-loop arrivals\n",
                 spec.name.c_str());
    return 2;
  }
  if (!spec.chaos.enabled()) {
    std::fprintf(stderr,
                 "error: scenario \"%s\" has no chaos timeline; nothing to "
                 "recover from\n",
                 spec.name.c_str());
    return 2;
  }

  // TFSIM_SERVING_US compresses the whole experiment, keeping its shape:
  // the chaos timeline, SLO windows, and any lender kill all scale by the
  // same factor, so event N still lands at the same fraction of the run.
  if (const std::uint64_t us = bench::env_u64("TFSIM_SERVING_US", 0);
      us > 0) {
    const auto horizon = static_cast<double>(us);
    const double scale = horizon / spec.traffic.duration_us;
    spec.traffic.duration_us = horizon;
    spec.traffic.diurnal_period_us *= scale;
    if (!spec.faults.kill_lender.empty()) spec.faults.kill_at_us *= scale;
    spec.slo.window_us *= scale;
    for (scenario::ChaosEventSpec& ev : spec.chaos.events) {
      ev.at_us *= scale;
      ev.for_us *= scale;
    }
  }
  const double window_us = spec.slo.window_us;
  const double horizon_us = spec.traffic.duration_us;

  // Resolve the worker count once, then pin it on the spec: the Cluster
  // itself honors $TFSIM_PDES, which would defeat the serial re-run below.
  unsigned threads = spec.pdes.threads;
  if (const char* env = std::getenv("TFSIM_PDES");
      env != nullptr && *env != '\0') {
    threads = sim::PdesConfig::threads_from_env();
  }
  if (threads == 0) threads = 1;
  unsetenv("TFSIM_PDES");

  // The detector path is whatever the scenario declares (chaos_rack ships
  // with detector.enabled = true); the baseline is the same spec with the
  // detector off -- timeout-driven failover only.
  scenario::ScenarioSpec on_spec = spec;
  on_spec.detector.enabled = true;
  scenario::ScenarioSpec off_spec = spec;
  off_spec.detector.enabled = false;

  const core::ServingReport on = run_once(on_spec, threads);
  const core::ServingReport off = run_once(off_spec, threads);

  if (threads > 1) {
    // The determinism contract, checked in-process for both modes: the
    // serial reference must reproduce every observable byte-for-byte.
    const core::ServingReport on_serial = run_once(on_spec, 1);
    if (on_serial.serialized != on.serialized) {
      std::fprintf(stderr,
                   "chaos_mttr: detector PDES digest mismatch (serial %llu "
                   "vs %u-thread %llu)\n",
                   static_cast<unsigned long long>(on_serial.digest), threads,
                   static_cast<unsigned long long>(on.digest));
      return 1;
    }
    const core::ServingReport off_serial = run_once(off_spec, 1);
    if (off_serial.serialized != off.serialized) {
      std::fprintf(stderr,
                   "chaos_mttr: baseline PDES digest mismatch (serial %llu "
                   "vs %u-thread %llu)\n",
                   static_cast<unsigned long long>(off_serial.digest), threads,
                   static_cast<unsigned long long>(off.digest));
      return 1;
    }
    std::printf("determinism: serial == %u-thread (detector %llu, baseline "
                "%llu)\n",
                threads, static_cast<unsigned long long>(on.digest),
                static_cast<unsigned long long>(off.digest));
  }

  // Score every non-recover event in both modes against the same resolved
  // timeline (recover events only close windows; they are not scored).
  const std::vector<scenario::ChaosWindow> timeline =
      scenario::resolve_chaos(spec.chaos);
  std::vector<EventScore> on_scores;
  std::vector<EventScore> off_scores;
  for (const scenario::ChaosWindow& ev : timeline) {
    on_scores.push_back(score_event(ev, on, window_us, horizon_us));
    off_scores.push_back(score_event(ev, off, window_us, horizon_us));
  }

  core::Table table(
      "Chaos MTTR: " + spec.name + " (" +
          std::to_string(spec.expanded_node_count()) + " nodes, p99 target " +
          core::Table::num(on.targets.p99_us, 0) + " us, SLO window " +
          core::Table::num(window_us, 0) + " us)",
      {"event", "mode", "start (us)", "degraded (us)", "ttr (us)", "blast",
       "recovered"});
  const auto row = [&table](const char* mode, const EventScore& s) {
    table.row({s.label, mode, core::Table::num(s.start_us, 0),
               core::Table::num(s.degraded_us, 0),
               core::Table::num(s.ttr_us, 0), std::to_string(s.blast),
               s.recovered ? "yes" : "NO"});
  };
  for (std::size_t i = 0; i < timeline.size(); ++i) {
    row("detector", on_scores[i]);
    row("baseline", off_scores[i]);
  }
  table.print();
  table.to_csv(bench::csv_path("chaos_mttr.csv"));

  const auto mode_line = [](const char* mode, const core::ServingReport& r) {
    std::printf("%s: offered %llu, completed %llu, failed %llu, failovers "
                "%llu, restripes %llu, rejoins %llu, gray_inflated %llu, "
                "chaos_drops %llu, overall p99 %.2f us\n",
                mode, static_cast<unsigned long long>(r.totals.offered),
                static_cast<unsigned long long>(r.totals.completed),
                static_cast<unsigned long long>(r.totals.failed),
                static_cast<unsigned long long>(r.failovers),
                static_cast<unsigned long long>(r.restripes),
                static_cast<unsigned long long>(r.rejoins),
                static_cast<unsigned long long>(r.gray_inflated),
                static_cast<unsigned long long>(r.switch_chaos_drops),
                r.overall.p99());
  };
  mode_line("detector", on);
  mode_line("baseline", off);

  // --- acceptance -------------------------------------------------------
  if (!on.balanced || !off.balanced) {
    std::fprintf(stderr, "chaos_mttr: ledger unbalanced -- offered != "
                         "completed + shed + rejected + failed\n");
    return 1;
  }
  if (on.gray_inflated == 0 || off.gray_inflated == 0) {
    std::fprintf(stderr, "chaos_mttr: gray-lender window never inflated a "
                         "request -- chaos timeline did not bite\n");
    return 1;
  }
  if (on.switch_chaos_drops == 0 || off.switch_chaos_drops == 0) {
    std::fprintf(stderr, "chaos_mttr: kill_switch window dropped no frames "
                         "-- chaos timeline did not bite\n");
    return 1;
  }
  if (on.restripes == 0) {
    std::fprintf(stderr, "chaos_mttr: detector mode never re-striped -- the "
                         "reaction path is dead\n");
    return 1;
  }
  bool gray_checked = false;
  for (std::size_t i = 0; i < timeline.size(); ++i) {
    if (timeline[i].kind != scenario::ChaosKind::kGrayLender) continue;
    gray_checked = true;
    if (!(on_scores[i].degraded_us < off_scores[i].degraded_us)) {
      std::fprintf(stderr,
                   "chaos_mttr: detector must beat the timeout-only baseline "
                   "on the gray event's p99-degradation window (%s: detector "
                   "%.0f us vs baseline %.0f us)\n",
                   on_scores[i].label.c_str(), on_scores[i].degraded_us,
                   off_scores[i].degraded_us);
      return 1;
    }
    std::printf("gray recovery: %s degraded %.0f us with the detector vs "
                "%.0f us timeout-only (%.0f us shorter)\n",
                on_scores[i].label.c_str(), on_scores[i].degraded_us,
                off_scores[i].degraded_us,
                off_scores[i].degraded_us - on_scores[i].degraded_us);
  }
  if (!gray_checked) {
    std::fprintf(stderr,
                 "chaos_mttr: scenario has no gray_lender event; the "
                 "detector-vs-baseline comparison needs one\n");
    return 1;
  }
  std::puts(
      "Paper shape: the online detector migrates off the gray lender before "
      "the timeout budget burns and re-stripes around the dead spine, so "
      "the windowed p99 degradation stays bounded instead of riding out the "
      "full timeout cascade.");

  write_bench_json(bench::csv_path("BENCH_chaos.json"), spec, threads, on,
                   off, on_scores, off_scores);
  bench::echo_scenario(spec, "chaos_mttr.csv");
  return 0;
}
