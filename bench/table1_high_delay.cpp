// Table I: impact of high delay on application performance.
//
// Degradation = completion time on disaggregated memory under injection /
// completion time on local memory, for PERIOD = 1 (vanilla ThymesisFlow)
// and PERIOD = 1000, across Redis (Memtier), Graph500 BFS, Graph500 SSSP.
//
// Paper's measured row:          PERIOD=1   PERIOD=1000
//   Redis                        1.01x      1.73x
//   Graph500 BFS                 6x         2209x
//   Graph500 SSSP                5.3x       1800x
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/metrics.hpp"
#include "core/report.hpp"
#include "core/session.hpp"

using namespace tfsim;

namespace {

struct Table1State {
  // Completion times (simulated) per workload/config.
  sim::Time redis_local = 0, redis_p1 = 0, redis_p1000 = 0;
  sim::Time bfs_local = 0, bfs_p1 = 0, bfs_p1000 = 0;
  sim::Time sssp_local = 0, sssp_p1 = 0, sssp_p1000 = 0;
  bool redis_ok = true;
  std::string bfs_err, sssp_err;
};
Table1State g_state;

core::SessionConfig session_cfg(std::uint64_t period, node::Placement placement) {
  core::SessionConfig cfg;
  cfg.period = period;
  cfg.placement = placement;
  return cfg;
}

const workloads::g500::EdgeList& shared_edges() {
  static const workloads::g500::EdgeList el =
      workloads::g500::kronecker_generate(bench::graph_config().gen);
  return el;
}

void BM_Redis(benchmark::State& state) {
  const std::uint64_t period = static_cast<std::uint64_t>(state.range(0));
  const auto placement =
      state.range(1) ? node::Placement::kRemote : node::Placement::kLocal;
  for (auto _ : state) {
    core::Session session(session_cfg(period, placement));
    const auto res =
        session.run_memtier(bench::kv_store_config(), bench::memtier_config());
    g_state.redis_ok = g_state.redis_ok && res.validated;
    state.counters["ops_per_sec"] = res.ops_per_sec;
    state.counters["elapsed_ms"] = sim::to_ms(res.elapsed);
    auto& slot = placement == node::Placement::kLocal
                     ? g_state.redis_local
                     : (period == 1 ? g_state.redis_p1 : g_state.redis_p1000);
    slot = res.elapsed;
  }
}

void BM_GraphBfs(benchmark::State& state) {
  const std::uint64_t period = static_cast<std::uint64_t>(state.range(0));
  const auto placement =
      state.range(1) ? node::Placement::kRemote : node::Placement::kLocal;
  for (auto _ : state) {
    core::Session session(session_cfg(period, placement));
    const auto job = session.run_bfs_job(bench::graph_config(), shared_edges(), 1);
    if (!job.validation_error.empty()) g_state.bfs_err = job.validation_error;
    state.counters["job_ms"] = sim::to_ms(job.total());
    auto& slot = placement == node::Placement::kLocal
                     ? g_state.bfs_local
                     : (period == 1 ? g_state.bfs_p1 : g_state.bfs_p1000);
    slot = job.total();
  }
}

void BM_GraphSssp(benchmark::State& state) {
  const std::uint64_t period = static_cast<std::uint64_t>(state.range(0));
  const auto placement =
      state.range(1) ? node::Placement::kRemote : node::Placement::kLocal;
  for (auto _ : state) {
    core::Session session(session_cfg(period, placement));
    const auto job = session.run_sssp_job(bench::graph_config(), shared_edges(), 1);
    if (!job.validation_error.empty()) g_state.sssp_err = job.validation_error;
    state.counters["job_ms"] = sim::to_ms(job.total());
    auto& slot = placement == node::Placement::kLocal
                     ? g_state.sssp_local
                     : (period == 1 ? g_state.sssp_p1 : g_state.sssp_p1000);
    slot = job.total();
  }
}

// range(0) = PERIOD, range(1) = 1 remote / 0 local baseline.
BENCHMARK(BM_Redis)->Args({1, 0})->Args({1, 1})->Args({1000, 1})
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GraphBfs)->Args({1, 0})->Args({1, 1})->Args({1000, 1})
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GraphSssp)->Args({1, 0})->Args({1, 1})->Args({1000, 1})
    ->Iterations(1)->Unit(benchmark::kMillisecond);

void print_table() {
  core::Table table(
      "Table I: impact of high delay on application performance "
      "(completion time vs local memory)",
      {"workload", "PERIOD=1", "PERIOD=1000", "paper PERIOD=1",
       "paper PERIOD=1000", "functional check"});
  table.row({"Redis",
             core::Table::ratio(core::degradation_from_times(
                 g_state.redis_p1, g_state.redis_local)),
             core::Table::ratio(core::degradation_from_times(
                 g_state.redis_p1000, g_state.redis_local)),
             "1.01x", "1.73x", g_state.redis_ok ? "GET/SET validated" : "FAILED"});
  table.row({"Graph500 BFS",
             core::Table::ratio(core::degradation_from_times(
                 g_state.bfs_p1, g_state.bfs_local)),
             core::Table::ratio(core::degradation_from_times(
                 g_state.bfs_p1000, g_state.bfs_local)),
             "6x", "2209x",
             g_state.bfs_err.empty() ? "BFS tree validated" : g_state.bfs_err});
  table.row({"Graph500 SSSP",
             core::Table::ratio(core::degradation_from_times(
                 g_state.sssp_p1, g_state.sssp_local)),
             core::Table::ratio(core::degradation_from_times(
                 g_state.sssp_p1000, g_state.sssp_local)),
             "5.3x", "1800x",
             g_state.sssp_err.empty() ? "SSSP dist validated" : g_state.sssp_err});
  table.print();
  table.to_csv(bench::csv_path("table1_high_delay.csv"));
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_table();
  return 0;
}
