// Figure 5: application performance degradation for varying delay.
//
// Degradation relative to *vanilla ThymesisFlow* (PERIOD = 1, remote
// memory).  The paper's shape: Redis stays ~1.01x across the whole sweep
// (network-stack-bound), while Graph500 BFS grows to ~10.7x and SSSP to
// ~8x (memory/compute-bound).  A ~30 us injected delay costs Redis <1% but
// ~7x on Graph500.
#include <benchmark/benchmark.h>

#include <map>
#include <vector>

#include "bench_common.hpp"
#include "core/metrics.hpp"
#include "core/report.hpp"
#include "core/session.hpp"

using namespace tfsim;

namespace {

constexpr std::uint64_t kPeriods[] = {1, 4, 8, 16, 32, 64};

struct Cell {
  sim::Time redis = 0, bfs = 0, sssp = 0;
  double injected_delay_us = 0.0;
};
std::map<std::uint64_t, Cell> g_cells;

const workloads::g500::EdgeList& shared_edges() {
  static const workloads::g500::EdgeList el =
      workloads::g500::kronecker_generate(bench::graph_config().gen);
  return el;
}

core::SessionConfig remote_cfg(std::uint64_t period) {
  core::SessionConfig cfg;
  cfg.period = period;
  cfg.placement = node::Placement::kRemote;
  return cfg;
}

void BM_Fig5Redis(benchmark::State& state) {
  const std::uint64_t period = kPeriods[state.range(0)];
  for (auto _ : state) {
    core::Session session(remote_cfg(period));
    const auto res =
        session.run_memtier(bench::kv_store_config(), bench::memtier_config());
    g_cells[period].redis = res.elapsed;
    state.counters["elapsed_ms"] = sim::to_ms(res.elapsed);
  }
}

void BM_Fig5Bfs(benchmark::State& state) {
  const std::uint64_t period = kPeriods[state.range(0)];
  for (auto _ : state) {
    core::Session session(remote_cfg(period));
    const auto job = session.run_bfs_job(bench::graph_config(), shared_edges(), 1);
    g_cells[period].bfs = job.total();
    // Injected delay proxy: mean added delay per transaction at the gate.
    g_cells[period].injected_delay_us =
        session.testbed().borrower().nic().injector().added_delay().mean();
    state.counters["job_ms"] = sim::to_ms(job.total());
  }
}

void BM_Fig5Sssp(benchmark::State& state) {
  const std::uint64_t period = kPeriods[state.range(0)];
  for (auto _ : state) {
    core::Session session(remote_cfg(period));
    const auto job = session.run_sssp_job(bench::graph_config(), shared_edges(), 1);
    g_cells[period].sssp = job.total();
    state.counters["job_ms"] = sim::to_ms(job.total());
  }
}

BENCHMARK(BM_Fig5Redis)->DenseRange(0, static_cast<int>(std::size(kPeriods)) - 1)
    ->Iterations(1)->Unit(benchmark::kMillisecond)->ArgNames({"idx"});
BENCHMARK(BM_Fig5Bfs)->DenseRange(0, static_cast<int>(std::size(kPeriods)) - 1)
    ->Iterations(1)->Unit(benchmark::kMillisecond)->ArgNames({"idx"});
BENCHMARK(BM_Fig5Sssp)->DenseRange(0, static_cast<int>(std::size(kPeriods)) - 1)
    ->Iterations(1)->Unit(benchmark::kMillisecond)->ArgNames({"idx"});

void print_table() {
  const Cell& base = g_cells[1];
  core::Table table(
      "Figure 5: degradation vs vanilla ThymesisFlow (PERIOD = 1)",
      {"PERIOD", "Redis", "Graph500 BFS", "Graph500 SSSP"});
  for (const auto& [period, cell] : g_cells) {
    table.row({std::to_string(period),
               core::Table::ratio(core::degradation_from_times(cell.redis, base.redis)),
               core::Table::ratio(core::degradation_from_times(cell.bfs, base.bfs)),
               core::Table::ratio(core::degradation_from_times(cell.sssp, base.sssp))});
  }
  table.print();
  table.to_csv(bench::csv_path("fig5_app_degradation.csv"));
  std::puts("Paper shape: Redis ~1.01x flat; BFS rises to ~10.7x; SSSP to ~8x.");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_table();
  return 0;
}
