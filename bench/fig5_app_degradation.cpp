// Figure 5: application performance degradation for varying delay.
//
// Degradation relative to *vanilla ThymesisFlow* (PERIOD = 1, remote
// memory).  The paper's shape: Redis stays ~1.01x across the whole sweep
// (network-stack-bound), while Graph500 BFS grows to ~10.7x and SSSP to
// ~8x (memory/compute-bound).  A ~30 us injected delay costs Redis <1% but
// ~7x on Graph500.
//
// The sweep fans out one Session per (PERIOD, application) cell across
// $TFSIM_JOBS workers; the shared edge list is generated once up front and
// only read inside the sweep.
#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.hpp"
#include "core/metrics.hpp"
#include "core/report.hpp"
#include "core/session.hpp"
#include "node/testbed.hpp"
#include "sim/config.hpp"

using namespace tfsim;

namespace {

const std::vector<std::uint64_t> kPeriods = {1, 4, 8, 16, 32, 64};

enum class App { kRedis, kBfs, kSssp };

struct Point {
  std::uint64_t period;
  App app;
};

struct PointResult {
  std::uint64_t period = 0;
  App app = App::kRedis;
  sim::Time elapsed = 0;
  double injected_delay_us = 0.0;
};

struct Cell {
  sim::Time redis = 0, bfs = 0, sssp = 0;
  double injected_delay_us = 0.0;
};

core::SessionConfig remote_cfg(const node::TestbedSpec& testbed,
                               std::uint64_t period) {
  core::SessionConfig cfg;
  cfg.testbed = testbed;
  cfg.period = period;
  cfg.placement = node::Placement::kRemote;
  return cfg;
}

PointResult run_point(const node::TestbedSpec& testbed, const Point& p,
                      const workloads::g500::EdgeList& edges) {
  PointResult res;
  res.period = p.period;
  res.app = p.app;
  core::Session session(remote_cfg(testbed, p.period));
  switch (p.app) {
    case App::kRedis: {
      const auto r =
          session.run_memtier(bench::kv_store_config(), bench::memtier_config());
      res.elapsed = r.elapsed;
      break;
    }
    case App::kBfs: {
      const auto job = session.run_bfs_job(bench::graph_config(), edges, 1);
      res.elapsed = job.total();
      // Injected delay proxy: mean added delay per transaction at the gate.
      res.injected_delay_us =
          session.testbed().borrower().nic().injector().added_delay().mean();
      break;
    }
    case App::kSssp: {
      const auto job = session.run_sssp_job(bench::graph_config(), edges, 1);
      res.elapsed = job.total();
      break;
    }
  }
  return res;
}

void print_table(const std::map<std::uint64_t, Cell>& cells) {
  // Degradation baseline: PERIOD = 1 when swept, else the lowest PERIOD.
  const Cell& base = cells.count(1) ? cells.at(1) : cells.begin()->second;
  core::Table table(
      "Figure 5: degradation vs vanilla ThymesisFlow (PERIOD = 1)",
      {"PERIOD", "Redis", "Graph500 BFS", "Graph500 SSSP"});
  for (const auto& [period, cell] : cells) {
    table.row({std::to_string(period),
               core::Table::ratio(core::degradation_from_times(cell.redis, base.redis)),
               core::Table::ratio(core::degradation_from_times(cell.bfs, base.bfs)),
               core::Table::ratio(core::degradation_from_times(cell.sssp, base.sssp))});
  }
  table.print();
  table.to_csv(bench::csv_path("fig5_app_degradation.csv"));
  std::puts("Paper shape: Redis ~1.01x flat; BFS rises to ~10.7x; SSSP to ~8x.");
}

}  // namespace

int main(int argc, char** argv) {
  sim::ArgParser args(
      "Figure 5: application degradation vs injection PERIOD");
  args.add_string("scenario", "paper_twonode",
                  "scenario name (scenarios/<name>.json) or path");
  args.add_string("periods", "", "PERIOD axis override (comma-separated)");
  if (!args.parse(argc, argv)) return 1;

  scenario::ScenarioSpec spec = bench::load_scenario(args.str("scenario"));
  const node::TestbedSpec testbed = node::to_testbed_spec(spec);
  const auto periods = bench::axis_values<std::uint64_t>(
      args.int_list("periods"), spec.sweep.periods, kPeriods);

  // Generate the shared graph input once, before the fan-out.
  const workloads::g500::EdgeList edges =
      workloads::g500::kronecker_generate(bench::graph_config().gen);

  std::vector<Point> points;
  for (const auto period : periods) {
    for (const App app : {App::kRedis, App::kBfs, App::kSssp}) {
      points.push_back({period, app});
    }
  }
  const auto results = bench::run_sweep(
      "fig5_app_degradation", points,
      [&](const Point& p) { return run_point(testbed, p, edges); });

  std::map<std::uint64_t, Cell> cells;
  for (const auto& r : results) {
    Cell& c = cells[r.period];
    switch (r.app) {
      case App::kRedis: c.redis = r.elapsed; break;
      case App::kBfs:
        c.bfs = r.elapsed;
        c.injected_delay_us = r.injected_delay_us;
        break;
      case App::kSssp: c.sssp = r.elapsed; break;
    }
  }
  print_table(cells);
  spec.sweep.periods = periods;
  bench::echo_scenario(spec, "fig5_app_degradation.csv");
  return 0;
}
