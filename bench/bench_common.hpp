// Shared helpers for the per-figure bench binaries.
//
// Experiment sizing comes from environment variables (defaults reproduce
// the paper's shapes at laptop-friendly sizes; set TFSIM_FULL=1 for the
// paper's exact workload sizes):
//   TFSIM_STREAM_ELEMENTS   STREAM array elements        (default 10000000)
//   TFSIM_GRAPH_SCALE       Graph500 scale               (default 19; paper 20)
//   TFSIM_GRAPH_EDGEFACTOR  Graph500 edgefactor          (default 16)
//   TFSIM_KV_KEYS           KV-store key space           (default 200000)
//   TFSIM_KV_REQUESTS       Memtier requests per client  (default 200; paper 10000)
//   TFSIM_CSV_DIR           where to mirror result CSVs  (default ".")
//   TFSIM_JOBS              sweep worker threads         (default 1 = serial;
//                           0 = one per hardware thread)
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "sim/sweep.hpp"
#include "workloads/graph500/graph500.hpp"
#include "workloads/kvstore/memtier.hpp"
#include "workloads/stream/stream.hpp"

namespace tfsim::bench {

inline std::uint64_t env_u64(const char* name, std::uint64_t def) {
  if (const char* v = std::getenv(name)) {
    return std::strtoull(v, nullptr, 10);
  }
  return def;
}

inline bool full_size() { return env_u64("TFSIM_FULL", 0) != 0; }

inline workloads::StreamConfig stream_config() {
  workloads::StreamConfig cfg;
  cfg.elements = env_u64("TFSIM_STREAM_ELEMENTS", 10'000'000);
  return cfg;
}

inline workloads::g500::Graph500Config graph_config() {
  workloads::g500::Graph500Config cfg;
  cfg.gen.scale = static_cast<std::uint32_t>(
      env_u64("TFSIM_GRAPH_SCALE", full_size() ? 20 : 19));
  cfg.gen.edgefactor =
      static_cast<std::uint32_t>(env_u64("TFSIM_GRAPH_EDGEFACTOR", 16));
  return cfg;
}

inline workloads::kv::KvStoreConfig kv_store_config() {
  workloads::kv::KvStoreConfig cfg;
  return cfg;
}

inline workloads::kv::MemtierConfig memtier_config() {
  workloads::kv::MemtierConfig cfg;
  cfg.key_space = env_u64("TFSIM_KV_KEYS", 200'000);
  cfg.requests_per_client =
      env_u64("TFSIM_KV_REQUESTS", full_size() ? 10'000 : 200);
  return cfg;
}

inline std::string csv_path(const std::string& file) {
  std::string dir = ".";
  if (const char* v = std::getenv("TFSIM_CSV_DIR")) dir = v;
  return dir + "/" + file;
}

/// Run one independent simulation per element of `inputs` across
/// $TFSIM_JOBS worker threads (serial when unset), returning results in
/// input order — byte-identical to a serial loop, so tables and CSVs do
/// not depend on the worker count.  Prints the sweep wall-clock so the
/// speedup is visible next to the tables.
template <typename T, typename Fn>
auto run_sweep(const char* name, const std::vector<T>& inputs, Fn&& fn) {
  const sim::SweepRunner runner;
  const auto t0 = std::chrono::steady_clock::now();
  auto results = runner.map(inputs, std::forward<Fn>(fn));
  const auto wall =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - t0);
  std::printf("[%s] %zu points, %u job(s), wall %lld ms\n", name,
              inputs.size(), runner.jobs(),
              static_cast<long long>(wall.count()));
  return results;
}

}  // namespace tfsim::bench
