// Shared helpers for the per-figure bench binaries.
//
// Experiment sizing comes from environment variables (defaults reproduce
// the paper's shapes at laptop-friendly sizes; set TFSIM_FULL=1 for the
// paper's exact workload sizes):
//   TFSIM_STREAM_ELEMENTS   STREAM array elements        (default 10000000)
//   TFSIM_GRAPH_SCALE       Graph500 scale               (default 19; paper 20)
//   TFSIM_GRAPH_EDGEFACTOR  Graph500 edgefactor          (default 16)
//   TFSIM_KV_KEYS           KV-store key space           (default 200000)
//   TFSIM_KV_REQUESTS       Memtier requests per client  (default 200; paper 10000)
//   TFSIM_CSV_DIR           where to mirror result CSVs  (default ".")
//   TFSIM_JOBS              sweep worker threads         (default 1 = serial;
//                           0 = one per hardware thread)
#pragma once

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "scenario/scenario.hpp"
#include "sim/sweep.hpp"
#include "workloads/graph500/graph500.hpp"
#include "workloads/kvstore/memtier.hpp"
#include "workloads/stream/stream.hpp"

namespace tfsim::bench {

/// Strict environment-variable parsing: a set-but-malformed value is a
/// configuration bug, so fail loudly instead of silently running the
/// experiment at 0 (what strtoull's "parse as far as you can" gave us).
/// An unset or empty variable falls back to the default.
inline std::uint64_t env_u64(const char* name, std::uint64_t def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (errno != 0 || end == v || *end != '\0' || *v == '-') {
    std::fprintf(stderr,
                 "error: %s=\"%s\" is not a valid unsigned integer\n", name, v);
    std::exit(2);
  }
  return parsed;
}

inline bool full_size() { return env_u64("TFSIM_FULL", 0) != 0; }

inline workloads::StreamConfig stream_config() {
  workloads::StreamConfig cfg;
  cfg.elements = env_u64("TFSIM_STREAM_ELEMENTS", 10'000'000);
  return cfg;
}

inline workloads::g500::Graph500Config graph_config() {
  workloads::g500::Graph500Config cfg;
  cfg.gen.scale = static_cast<std::uint32_t>(
      env_u64("TFSIM_GRAPH_SCALE", full_size() ? 20 : 19));
  cfg.gen.edgefactor =
      static_cast<std::uint32_t>(env_u64("TFSIM_GRAPH_EDGEFACTOR", 16));
  return cfg;
}

inline workloads::kv::KvStoreConfig kv_store_config() {
  workloads::kv::KvStoreConfig cfg;
  return cfg;
}

inline workloads::kv::MemtierConfig memtier_config() {
  workloads::kv::MemtierConfig cfg;
  cfg.key_space = env_u64("TFSIM_KV_KEYS", 200'000);
  cfg.requests_per_client =
      env_u64("TFSIM_KV_REQUESTS", full_size() ? 10'000 : 200);
  return cfg;
}

inline std::string csv_path(const std::string& file) {
  std::string dir = ".";
  if (const char* v = std::getenv("TFSIM_CSV_DIR")) dir = v;
  return dir + "/" + file;
}

// --- scenario plumbing -----------------------------------------------------
//
// Benches take --scenario=<name-or-path>.  A path (contains '/' or ends in
// .json) loads directly; a bare name resolves through, in order:
//   $TFSIM_SCENARIO (explicit file override),
//   $TFSIM_SCENARIO_DIR/<name>.json,
//   ./scenarios/<name>.json,
//   <source tree>/scenarios/<name>.json (baked in at build time),
//   the built-in programmatic spec of the same name.

inline bool file_exists(const std::string& path) {
  return std::ifstream(path).good();
}

/// Resolve and load a scenario; exits with a clear error when the name is
/// unknown or the file fails to parse (a broken scenario must never run
/// the experiment with silently-default settings).
inline scenario::ScenarioSpec load_scenario(const std::string& name_or_path) {
  try {
    if (name_or_path.find('/') != std::string::npos ||
        (name_or_path.size() > 5 &&
         name_or_path.rfind(".json") == name_or_path.size() - 5)) {
      return scenario::load_file(name_or_path);
    }
    if (const char* v = std::getenv("TFSIM_SCENARIO")) {
      if (*v != '\0') return scenario::load_file(v);
    }
    const std::string file = name_or_path + ".json";
    if (const char* v = std::getenv("TFSIM_SCENARIO_DIR")) {
      if (*v != '\0' && file_exists(std::string(v) + "/" + file)) {
        return scenario::load_file(std::string(v) + "/" + file);
      }
    }
    if (file_exists("scenarios/" + file)) {
      return scenario::load_file("scenarios/" + file);
    }
#ifdef TFSIM_SCENARIO_SOURCE_DIR
    if (file_exists(std::string(TFSIM_SCENARIO_SOURCE_DIR) + "/" + file)) {
      return scenario::load_file(std::string(TFSIM_SCENARIO_SOURCE_DIR) + "/" +
                                 file);
    }
#endif
    if (auto spec = scenario::builtin(name_or_path)) return *spec;
    std::fprintf(stderr, "error: unknown scenario \"%s\"\n",
                 name_or_path.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
  }
  std::exit(2);
}

/// Pick a sweep axis with the standard precedence: command-line override >
/// the scenario's pinned axis > the bench's built-in default.
template <typename T>
inline std::vector<T> axis_values(const std::vector<std::int64_t>& cli,
                                  const std::vector<T>& spec_axis,
                                  std::vector<T> fallback) {
  if (!cli.empty()) {
    std::vector<T> out;
    for (const auto v : cli) out.push_back(static_cast<T>(v));
    return out;
  }
  if (!spec_axis.empty()) return spec_axis;
  return fallback;
}

/// Echo the fully-resolved spec (defaults filled in, overrides applied)
/// next to a result CSV, so every CSV states exactly what produced it.
inline void echo_scenario(const scenario::ScenarioSpec& spec,
                          const std::string& csv_file) {
  std::string stem = csv_file;
  if (stem.size() > 4 && stem.rfind(".csv") == stem.size() - 4) {
    stem.resize(stem.size() - 4);
  }
  const std::string path = csv_path(stem + ".scenario.json");
  std::ofstream out(path);
  out << scenario::resolved_json(spec);
  std::printf("resolved scenario -> %s\n", path.c_str());
}

/// Run one independent simulation per element of `inputs` across
/// $TFSIM_JOBS worker threads (serial when unset), returning results in
/// input order — byte-identical to a serial loop, so tables and CSVs do
/// not depend on the worker count.  Prints the sweep wall-clock so the
/// speedup is visible next to the tables.
template <typename T, typename Fn>
auto run_sweep(const char* name, const std::vector<T>& inputs, Fn&& fn) {
  const sim::SweepRunner runner;
  const auto t0 = std::chrono::steady_clock::now();
  auto results = runner.map(inputs, std::forward<Fn>(fn));
  const auto wall =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - t0);
  std::printf("[%s] %zu points, %u job(s), wall %lld ms\n", name,
              inputs.size(), runner.jobs(),
              static_cast<long long>(wall.count()));
  return results;
}

}  // namespace tfsim::bench
