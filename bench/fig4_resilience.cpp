// Figure 4: system reliability testing under heavy delay injection.
//
// Exponentially increasing PERIOD stress-tests the stack.  The paper finds:
// at PERIOD=1000 STREAM completes with ~400 us effective access time and
// the CPU/OpenCAPI/FPGA stack stays functional; at PERIOD=10000 (an
// effective delay of ~4 ms) the compute-side FPGA is no longer detected and
// disaggregated memory cannot attach -- a crash, but at delays far beyond
// the 99th-percentile of datacenter fabrics.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench_common.hpp"
#include "core/report.hpp"
#include "core/resilience.hpp"

using namespace tfsim;

namespace {

constexpr std::uint64_t kPeriods[] = {1, 10, 100, 1000, 10000};

std::vector<core::ResilienceProbe> g_probes;

void BM_Resilience(benchmark::State& state) {
  const std::uint64_t period = kPeriods[state.range(0)];
  for (auto _ : state) {
    core::ResilienceOptions opts;
    opts.stream = bench::stream_config();
    const auto probe = core::assess_resilience(period, opts);
    state.counters["latency_us"] = probe.stream_latency_us;
    state.counters["attached"] = probe.attached ? 1 : 0;
    g_probes.push_back(probe);
  }
}
BENCHMARK(BM_Resilience)
    ->DenseRange(0, static_cast<int>(std::size(kPeriods)) - 1)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->ArgNames({"idx"});

void print_table() {
  core::Table table(
      "Figure 4: reliability under heavy delay injection",
      {"PERIOD", "attached", "STREAM latency (us)", "classification", "paper"});
  for (const auto& p : g_probes) {
    std::string paper;
    if (p.period == 1) paper = "vanilla baseline";
    if (p.period == 1000) paper = "~400 us, system functional";
    if (p.period == 10000) paper = "FPGA not detected (crash, ~4 ms)";
    table.row({std::to_string(p.period), p.attached ? "yes" : "NO",
               p.attached ? core::Table::num(p.stream_latency_us, 1) : "-",
               core::to_string(p.health), paper});
  }
  table.print();
  table.to_csv(bench::csv_path("fig4_resilience.csv"));
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_table();
  return 0;
}
