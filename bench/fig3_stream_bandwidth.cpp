// Figure 3: bandwidth measured by STREAM for varying delay injection.
//
// Consumed bandwidth drops rapidly with added delay while the
// bandwidth-delay product stays roughly constant (~16.5 kB on the paper's
// testbed): the injector throttles admission, it does not shrink the
// outstanding-request window.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench_common.hpp"
#include "core/metrics.hpp"
#include "core/report.hpp"
#include "core/session.hpp"

using namespace tfsim;

namespace {

constexpr std::uint64_t kPeriods[] = {1, 2, 5, 10, 20, 50, 100, 200, 400};

struct Row {
  std::uint64_t period;
  double bandwidth_gbps;
  double latency_us;
  double bdp_kb;
};
std::vector<Row> g_rows;

void BM_StreamBandwidth(benchmark::State& state) {
  const std::uint64_t period = kPeriods[state.range(0)];
  for (auto _ : state) {
    core::SessionConfig cfg;
    cfg.period = period;
    core::Session session(cfg);
    const auto res = session.run_stream(bench::stream_config());
    // Pair each kernel's own bandwidth and latency (copy is the canonical
    // STREAM line in the paper's plot).
    const auto& k = res.kernel("copy");
    Row row{period, k.bandwidth_gbps, k.avg_latency_us,
            core::bdp_kb(k.bandwidth_gbps, k.avg_latency_us)};
    state.counters["bw_gbps"] = row.bandwidth_gbps;
    state.counters["bdp_kb"] = row.bdp_kb;
    g_rows.push_back(row);
  }
}
BENCHMARK(BM_StreamBandwidth)
    ->DenseRange(0, static_cast<int>(std::size(kPeriods)) - 1)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->ArgNames({"idx"});

void print_table() {
  core::Table table(
      "Figure 3: STREAM bandwidth vs injection PERIOD (copy kernel)",
      {"PERIOD", "bandwidth (GB/s)", "latency (us)", "BDP (kB)"});
  double bdp_min = 1e30, bdp_max = 0;
  for (const auto& r : g_rows) {
    table.row({std::to_string(r.period), core::Table::num(r.bandwidth_gbps, 3),
               core::Table::num(r.latency_us, 2), core::Table::num(r.bdp_kb, 1)});
    if (r.period > 1) {  // saturated regime
      bdp_min = std::min(bdp_min, r.bdp_kb);
      bdp_max = std::max(bdp_max, r.bdp_kb);
    }
  }
  table.print();
  table.to_csv(bench::csv_path("fig3_stream_bandwidth.csv"));
  std::printf("BDP across saturated sweep: %.1f - %.1f kB"
              " (paper: roughly constant at ~16.5 kB)\n",
              bdp_min, bdp_max);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_table();
  return 0;
}
