// Figure 3: bandwidth measured by STREAM for varying delay injection.
//
// Consumed bandwidth drops rapidly with added delay while the
// bandwidth-delay product stays roughly constant (~16.5 kB on the paper's
// testbed): the injector throttles admission, it does not shrink the
// outstanding-request window.
//
// Each PERIOD is an independent Session, so the sweep fans out across
// $TFSIM_JOBS workers; the table/CSV are identical for any worker count.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/metrics.hpp"
#include "core/report.hpp"
#include "core/session.hpp"
#include "node/testbed.hpp"
#include "sim/config.hpp"

using namespace tfsim;

namespace {

const std::vector<std::uint64_t> kPeriods = {1, 2, 5, 10, 20, 50, 100, 200, 400};

struct Row {
  std::uint64_t period = 0;
  double bandwidth_gbps = 0.0;
  double latency_us = 0.0;
  double bdp_kb = 0.0;
};

Row run_point(const node::TestbedSpec& testbed, std::uint64_t period) {
  core::SessionConfig cfg;
  cfg.testbed = testbed;
  cfg.period = period;
  core::Session session(cfg);
  const auto res = session.run_stream(bench::stream_config());
  // Pair each kernel's own bandwidth and latency (copy is the canonical
  // STREAM line in the paper's plot).
  const auto& k = res.kernel("copy");
  return Row{period, k.bandwidth_gbps, k.avg_latency_us,
             core::bdp_kb(k.bandwidth_gbps, k.avg_latency_us)};
}

void print_table(const std::vector<Row>& rows) {
  core::Table table(
      "Figure 3: STREAM bandwidth vs injection PERIOD (copy kernel)",
      {"PERIOD", "bandwidth (GB/s)", "latency (us)", "BDP (kB)"});
  double bdp_min = 1e30, bdp_max = 0;
  for (const auto& r : rows) {
    table.row({std::to_string(r.period), core::Table::num(r.bandwidth_gbps, 3),
               core::Table::num(r.latency_us, 2), core::Table::num(r.bdp_kb, 1)});
    if (r.period > 1) {  // saturated regime
      bdp_min = std::min(bdp_min, r.bdp_kb);
      bdp_max = std::max(bdp_max, r.bdp_kb);
    }
  }
  table.print();
  table.to_csv(bench::csv_path("fig3_stream_bandwidth.csv"));
  std::printf("BDP across saturated sweep: %.1f - %.1f kB"
              " (paper: roughly constant at ~16.5 kB)\n",
              bdp_min, bdp_max);
}

}  // namespace

int main(int argc, char** argv) {
  sim::ArgParser args(
      "Figure 3: STREAM bandwidth vs injection PERIOD (copy kernel)");
  args.add_string("scenario", "paper_twonode",
                  "scenario name (scenarios/<name>.json) or path");
  args.add_string("periods", "", "PERIOD axis override (comma-separated)");
  if (!args.parse(argc, argv)) return 1;

  scenario::ScenarioSpec spec = bench::load_scenario(args.str("scenario"));
  const node::TestbedSpec testbed = node::to_testbed_spec(spec);
  const auto periods = bench::axis_values<std::uint64_t>(
      args.int_list("periods"), spec.sweep.periods, kPeriods);

  const auto rows = bench::run_sweep(
      "fig3_stream_bandwidth", periods,
      [&](std::uint64_t p) { return run_point(testbed, p); });
  print_table(rows);
  spec.sweep.periods = periods;
  bench::echo_scenario(spec, "fig3_stream_bandwidth.csv");
  return 0;
}
