// Cycle-throughput microbenchmark for the AXI testbench settle schedulers
// (DESIGN.md section 10).
//
// Drives the paper's egress shape (saturating source -> router -> RateGate
// -> round-robin mux -> sink + monitor) under SettleMode::kNaive and
// SettleMode::kActivity across the PERIOD range of Fig. 4.  The activity
// scheduler's advantage scales with PERIOD: at PERIOD=1000 a saturated
// pipeline is quiescent for ~998 of every 1000 cycles, all of which the
// naive loop steps and the activity scheduler jumps -- the ISSUE's
// acceptance bar is >= 10x cycles/second there.
//
// Emits BENCH_axi.json (google-benchmark JSON, mirrored into
// $TFSIM_CSV_DIR) unless the caller passes its own --benchmark_out, so CI
// can archive the scheduler's perf trajectory from PR to PR.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "axi/endpoints.hpp"
#include "axi/monitor.hpp"
#include "axi/mux.hpp"
#include "axi/rate_gate.hpp"
#include "axi/router.hpp"
#include "axi/testbench.hpp"
#include "bench_common.hpp"

namespace {

using namespace tfsim::axi;

constexpr std::uint64_t kCycles = 1 << 16;

void build_egress(Testbench& tb, std::uint64_t period) {
  Wire& src = tb.wire("src");
  Wire& r0 = tb.wire("r0");
  Wire& g0 = tb.wire("g0");
  Wire& out = tb.wire("out");
  Source::Config scfg;
  scfg.saturate = true;
  tb.add<Source>("source", src, scfg);
  tb.add<Router>("router", src, std::vector<Wire*>{&r0});
  tb.add<RateGate>("gate", r0, g0, period);
  tb.add<RoundRobinMux>("mux", std::vector<Wire*>{&g0}, out);
  tb.add<Sink>("sink", out);
  tb.add<Monitor>("mon", out, /*check_id_order=*/true);
}

// items_per_second == simulated cycles per wall-clock second; compare the
// naive/activity pair at equal PERIOD for the scheduler speedup.
void BM_GatedEgress(benchmark::State& state) {
  const auto period = static_cast<std::uint64_t>(state.range(0));
  const auto mode =
      state.range(1) ? SettleMode::kActivity : SettleMode::kNaive;
  std::uint64_t skipped = 0;
  std::uint64_t evals = 0;
  for (auto _ : state) {
    Testbench tb(CheckMode::kStrict, mode);
    build_egress(tb, period);
    tb.run(kCycles);
    skipped = tb.skipped_cycles();
    evals = tb.eval_calls();
    benchmark::DoNotOptimize(tb.cycle());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(kCycles) *
                          state.iterations());
  state.counters["skipped_cycles"] = static_cast<double>(skipped);
  state.counters["eval_calls"] = static_cast<double>(evals);
}
BENCHMARK(BM_GatedEgress)
    ->ArgNames({"period", "activity"})
    ->ArgsProduct({{1, 10, 100, 1000, 10000}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

// Sensitivity-list settle with no fast-forward: a probabilistic sink flips
// READY every cycle, so every cycle steps in both modes and the win comes
// purely from re-evaluating only the modules whose inputs changed.
void BM_StallingSinkNoSkip(benchmark::State& state) {
  const auto mode =
      state.range(0) ? SettleMode::kActivity : SettleMode::kNaive;
  for (auto _ : state) {
    Testbench tb(CheckMode::kStrict, mode);
    Wire& src = tb.wire("src");
    Wire& g0 = tb.wire("g0");
    Wire& out = tb.wire("out");
    Source::Config scfg;
    scfg.saturate = true;
    tb.add<Source>("source", src, scfg);
    tb.add<RateGate>("gate", src, g0, 3);
    tb.add<RoundRobinMux>("mux", std::vector<Wire*>{&g0}, out);
    Sink::Config kcfg;
    kcfg.ready_probability = 0.5;
    tb.add<Sink>("sink", out, kcfg);
    tb.run(kCycles);
    benchmark::DoNotOptimize(tb.cycle());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(kCycles) *
                          state.iterations());
}
BENCHMARK(BM_StallingSinkNoSkip)
    ->ArgNames({"activity"})
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

// Fully idle bench: the upper bound of the fast-forward path (one jump per
// run() call vs kCycles settles for naive).
void BM_IdleBench(benchmark::State& state) {
  const auto mode =
      state.range(0) ? SettleMode::kActivity : SettleMode::kNaive;
  for (auto _ : state) {
    Testbench tb(CheckMode::kStrict, mode);
    Wire& w = tb.wire("w");
    tb.add<Source>("source", w);  // empty queue: idle from cycle 0
    tb.add<Sink>("sink", w);
    tb.run(kCycles);
    benchmark::DoNotOptimize(tb.cycle());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(kCycles) *
                          state.iterations());
}
BENCHMARK(BM_IdleBench)
    ->ArgNames({"activity"})
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Default to a JSON report next to the CSVs so CI can archive it.
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag;
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  }
  if (!has_out) {
    out_flag = "--benchmark_out=" + tfsim::bench::csv_path("BENCH_axi.json");
    args.push_back(out_flag.data());
    args.push_back(const_cast<char*>("--benchmark_out_format=json"));
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
