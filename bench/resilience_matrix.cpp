// Resilience under faults: the (PERIOD x loss x flap) health surface.
//
// The paper's Fig. 4 varies only the injected delay; real fabrics also lose
// frames, corrupt payloads, and flap links.  This bench sweeps the full
// fault matrix over a scenario testbed: each point builds a fresh cluster
// with the seeded fault layer active, drives a closed-loop access probe
// through the borrower NIC, and classifies the outcome on the widened
// health spectrum (healthy / recovering / degraded / detached /
// device-lost).  With the DL replay window in place, loss and corruption
// cost latency or surface as counted abandonments -- never hung
// transactions; every point asserts the credit/tag books balance.
//
// Points are independent, so the matrix fans out across $TFSIM_JOBS;
// results are byte-identical for any worker count.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/report.hpp"
#include "core/resilience.hpp"
#include "sim/config.hpp"

using namespace tfsim;

namespace {

/// Built-in flap schedules (index = the matrix's flap axis):
///   0: pristine -- no flaps;
///   1: one hard-down window (every frame sent into it is dropped);
///   2: a longer degraded window at a quarter of the link bandwidth.
std::vector<std::vector<net::FlapSpec>> flap_schedules() {
  return {
      {},
      {net::FlapSpec{sim::from_us(200.0), sim::from_us(100.0), 0.0}},
      {net::FlapSpec{sim::from_us(200.0), sim::from_us(400.0), 0.25}},
  };
}

const char* flap_name(std::uint32_t idx) {
  switch (idx) {
    case 0: return "none";
    case 1: return "down-100us";
    case 2: return "degraded-400us";
  }
  return "?";
}

void print_table(const std::vector<core::FaultProbe>& probes) {
  core::Table table(
      "Resilience matrix: health vs (PERIOD, loss rate, flap schedule)",
      {"PERIOD", "loss", "flap", "health", "latency (us)", "retries",
       "abandoned", "lost", "crc", "detached"});
  for (const auto& p : probes) {
    char loss[32];
    std::snprintf(loss, sizeof loss, "%g", p.point.loss_rate);
    table.row({std::to_string(p.point.period), loss,
               flap_name(p.point.flap_schedule), core::to_string(p.health),
               p.attached ? core::Table::num(p.avg_latency_us, 2) : "-",
               std::to_string(p.retries), std::to_string(p.abandoned),
               std::to_string(p.frames_lost), std::to_string(p.crc_drops),
               std::to_string(p.detached_lenders)});
  }
  table.print();
  table.to_csv(bench::csv_path("resilience_matrix.csv"));
}

}  // namespace

int main(int argc, char** argv) {
  sim::ArgParser args(
      "Resilience matrix: health classification under (PERIOD x loss x flap)");
  args.add_string("scenario", "paper_twonode",
                  "scenario name (scenarios/<name>.json) or path");
  args.add_string("periods", "", "PERIOD axis override (comma-separated)");
  args.add_string("loss", "", "loss-rate axis override (comma-separated)");
  args.add_int("accesses", 2000, "closed-loop probe accesses per point");
  args.add_int("seed", 1, "fault-stream seed");
  args.add_flag("smoke", "tiny matrix for CI (fast, still hits every class)");
  if (!args.parse(argc, argv)) return 1;

  core::FaultMatrixOptions opts;
  opts.scenario = bench::load_scenario(args.str("scenario"));
  opts.flap_schedules = flap_schedules();
  opts.seed = static_cast<std::uint64_t>(args.integer("seed"));
  opts.accesses = static_cast<std::uint32_t>(args.integer("accesses"));
  opts.periods = bench::axis_values<std::uint64_t>(
      args.int_list("periods"), opts.scenario.sweep.periods, opts.periods);
  if (!args.double_list("loss").empty()) {
    opts.loss_rates = args.double_list("loss");
  }
  if (args.flag("smoke")) {
    opts.periods = {1, 100};
    opts.loss_rates = {0.0, 1e-2};
    opts.accesses = 400;
  }

  const auto t0 = std::chrono::steady_clock::now();
  const auto probes = core::assess_fault_matrix(opts);
  const auto wall = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  std::printf("[resilience_matrix] %zu points, wall %lld ms\n", probes.size(),
              static_cast<long long>(wall.count()));

  print_table(probes);
  // Every probe already passed check_quiesced(); restate the headline
  // invariant next to the table.
  std::uint64_t failed_attempts = 0, retries = 0, abandoned = 0;
  for (const auto& p : probes) {
    failed_attempts += p.frames_lost + p.crc_drops;
    retries += p.retries;
    abandoned += p.abandoned;
  }
  std::printf("replay ledger: %llu failed attempts = %llu retries + %llu "
              "abandoned (%s)\n",
              static_cast<unsigned long long>(failed_attempts),
              static_cast<unsigned long long>(retries),
              static_cast<unsigned long long>(abandoned),
              failed_attempts == retries + abandoned ? "balanced"
                                                     : "IMBALANCED");
  bench::echo_scenario(opts.scenario, "resilience_matrix.csv");
  return failed_attempts == retries + abandoned ? 0 : 1;
}
