// §III-B validation: the cycle-level delay injector (AXI4-Stream READY
// gating, Eq. 1) and the event-level model used by the system simulation
// must agree.
//
// A saturating source drives the RTL-style pipeline
//   source -> router -> RateGate(PERIOD) -> round-robin mux -> sink
// for a fixed cycle budget; the event-level twin pushes back-to-back
// requests through a DelayInjector.  Both must deliver one transaction per
// PERIOD cycles (throughput = 1/PERIOD) with matching inter-arrival gaps.
#include <benchmark/benchmark.h>

#include <vector>

#include "axi/checker.hpp"
#include "axi/endpoints.hpp"
#include "axi/monitor.hpp"
#include "axi/mux.hpp"
#include "axi/rate_gate.hpp"
#include "axi/router.hpp"
#include "axi/testbench.hpp"
#include "bench_common.hpp"
#include "core/protocol_report.hpp"
#include "core/report.hpp"
#include "nic/injector.hpp"

using namespace tfsim;

namespace {

constexpr std::uint64_t kPeriods[] = {1, 2, 4, 8, 16, 64, 256};
constexpr std::uint64_t kCycles = 200'000;
constexpr double kClockHz = 320e6;

struct Row {
  std::uint64_t period;
  double rtl_throughput;     ///< beats per cycle through the gate
  double rtl_mean_gap;       ///< cycles between consecutive beats
  double event_throughput;   ///< admissions per cycle (event model)
  bool protocol_clean;
};
std::vector<Row> g_rows;

Row run_one(std::uint64_t period) {
  Row row{};
  row.period = period;

  // Cycle-level pipeline, audited by the protocol-assertion layer: wire
  // checkers are bound to every wire and the gate/router/mux self-check
  // conservation.  Collect mode so a violation shows up in the table
  // instead of aborting the whole validation run.
  axi::Testbench tb(axi::CheckMode::kCollect);
  auto& w_src = tb.wire("src->router");
  auto& w_gate_in = tb.wire("router->gate");
  auto& w_gate_out = tb.wire("gate->mux");
  auto& w_sink = tb.wire("mux->sink");
  axi::Source::Config scfg;
  scfg.saturate = true;
  tb.add<axi::Source>("source", w_src, scfg);
  tb.add<axi::Router>("router", w_src, std::vector<axi::Wire*>{&w_gate_in});
  tb.add<axi::RateGate>("injector", w_gate_in, w_gate_out, period);
  tb.add<axi::RoundRobinMux>("mux", std::vector<axi::Wire*>{&w_gate_out}, w_sink);
  auto& sink = tb.add<axi::Sink>("sink", w_sink);
  auto& mon = tb.add<axi::Monitor>("monitor", w_sink, /*check_id_order=*/true);
  auto& flow = tb.watch_flow("egress-conservation", {&w_src}, {&w_sink});
  tb.run(kCycles);
  tb.finish_checks();

  row.rtl_throughput =
      static_cast<double>(sink.received()) / static_cast<double>(kCycles);
  row.rtl_mean_gap = mon.gap_stats().mean();
  row.protocol_clean =
      mon.clean() && tb.sink().clean() && flow.entered() == flow.exited();
  if (!tb.sink().clean()) {
    core::violation_table("AXI protocol violations (PERIOD=" +
                              std::to_string(period) + ")",
                          tb.sink().violations())
        .print();
  }

  // Event-level twin: back-to-back admissions for the same wall-clock span.
  nic::DelayInjector injector(kClockHz, period);
  const sim::Time tclk = injector.clock_period();
  const sim::Time horizon = tclk * kCycles;
  sim::Time t = 0;
  std::uint64_t admitted = 0;
  while (true) {
    const sim::Time out = injector.admit(t);
    if (out >= horizon) break;
    // Saturating source: the next beat is offered the cycle after the
    // previous handshake completed.
    t = out + tclk;
    ++admitted;
  }
  row.event_throughput =
      static_cast<double>(admitted) / static_cast<double>(kCycles);
  return row;
}

void BM_Validate(benchmark::State& state) {
  const std::uint64_t period = kPeriods[state.range(0)];
  for (auto _ : state) {
    const Row row = run_one(period);
    state.counters["rtl_tput"] = row.rtl_throughput;
    state.counters["event_tput"] = row.event_throughput;
    g_rows.push_back(row);
  }
}
BENCHMARK(BM_Validate)->DenseRange(0, static_cast<int>(std::size(kPeriods)) - 1)
    ->Iterations(1)->Unit(benchmark::kMillisecond)->ArgNames({"idx"});

void print_table() {
  core::Table table(
      "Injector validation: cycle-level RTL vs event-level model",
      {"PERIOD", "expected tput (1/PERIOD)", "RTL tput", "event tput",
       "RTL mean gap (cycles)", "AXI protocol"});
  double worst_rel_err = 0.0;
  for (const auto& r : g_rows) {
    const double expected = 1.0 / static_cast<double>(r.period);
    worst_rel_err = std::max(worst_rel_err,
                             std::abs(r.rtl_throughput - r.event_throughput) /
                                 expected);
    table.row({std::to_string(r.period), core::Table::num(expected, 6),
               core::Table::num(r.rtl_throughput, 6),
               core::Table::num(r.event_throughput, 6),
               core::Table::num(r.rtl_mean_gap, 3),
               r.protocol_clean ? "clean" : "VIOLATIONS"});
  }
  table.print();
  table.to_csv(bench::csv_path("validation_injector.csv"));
  std::printf("worst RTL/event relative disagreement: %.4f%%\n",
              worst_rel_err * 100.0);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_table();
  return 0;
}
