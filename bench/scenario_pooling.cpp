// Scenario-driven pooling/contention bench (the N-node generalization of
// Fig. 6): builds whatever cluster a scenario file declares and sweeps the
// cluster-shape axes -- lender count (1-borrower-N-lender pooling, striped
// placement), borrower count (M pairs sharing a dumbbell trunk), workload
// instances per borrower, and the injector PERIOD.
//
// Axis precedence: command-line flag > the scenario's sweep block > a
// single point at the scenario's declared shape.  Every run echoes the
// fully-resolved spec next to the CSV, so each result states exactly what
// produced it.
//
// Each point is an independent Cluster, so the sweep fans out across
// $TFSIM_JOBS workers; the table/CSV are identical for any worker count.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/report.hpp"
#include "node/cluster.hpp"
#include "scenario/scenario.hpp"
#include "sim/config.hpp"
#include "workloads/stream/stream_flow.hpp"

using namespace tfsim;

namespace {

struct Point {
  std::uint32_t borrowers = 0;  ///< 0 = keep the scenario's declared count
  std::uint32_t lenders = 0;    ///< 0 = keep the scenario's declared count
  std::uint32_t instances = 1;  ///< concurrent flows per borrower
  std::uint64_t period = 1;
};

struct Row {
  Point p;
  bool attached = false;
  double aggregate_gbps = 0.0;
  double per_borrower_gbps = 0.0;
  double min_borrower_gbps = 0.0;
  double max_borrower_gbps = 0.0;
};

Row run_point(const scenario::ScenarioSpec& base, const Point& p) {
  scenario::ScenarioSpec spec = base;
  if (p.borrowers > 0) spec.set_borrower_count(p.borrowers);
  if (p.lenders > 0) spec.set_lender_count(p.lenders);
  spec.injector.period = p.period;

  node::Cluster cluster(spec);
  Row row;
  row.p = p;
  // Report the realized shape, not the axis placeholder (0 = declared).
  row.p.borrowers = static_cast<std::uint32_t>(cluster.num_borrowers());
  row.p.lenders = static_cast<std::uint32_t>(cluster.num_lenders());
  row.attached = cluster.attach_remote();
  if (!row.attached) return row;

  const sim::Time measure_end =
      sim::from_ms(static_cast<double>(bench::env_u64("TFSIM_FLOW_MS", 20)));
  std::vector<std::unique_ptr<workloads::RemoteStreamFlow>> flows;
  std::vector<double> borrower_gbps(cluster.num_borrowers(), 0.0);
  for (std::size_t b = 0; b < cluster.num_borrowers(); ++b) {
    // Instances split the borrower's remote window so concurrent flows
    // walk disjoint ranges (the Fig. 6 setup, striped chunks included).
    const std::uint64_t span = cluster.remote_span(b) / p.instances;
    for (std::uint32_t i = 0; i < p.instances; ++i) {
      workloads::FlowConfig cfg;
      cfg.concurrency = 128;
      cfg.base = cluster.remote_base(b) + std::uint64_t{i} * span;
      cfg.span_bytes = span;
      cfg.stop_at = measure_end;
      flows.push_back(std::make_unique<workloads::RemoteStreamFlow>(
          cluster.engine(), cluster.borrower(b).nic(), cfg));
    }
  }
  for (auto& f : flows) f->start();
  cluster.engine().run();

  for (std::size_t b = 0; b < cluster.num_borrowers(); ++b) {
    for (std::uint32_t i = 0; i < p.instances; ++i) {
      borrower_gbps[b] +=
          flows[b * p.instances + i]->stats().bandwidth_gbps(measure_end);
    }
  }
  row.min_borrower_gbps = 1e30;
  for (const double bw : borrower_gbps) {
    row.aggregate_gbps += bw;
    row.min_borrower_gbps = std::min(row.min_borrower_gbps, bw);
    row.max_borrower_gbps = std::max(row.max_borrower_gbps, bw);
  }
  row.per_borrower_gbps =
      row.aggregate_gbps / static_cast<double>(cluster.num_borrowers());
  return row;
}

void print_table(const std::string& scenario_name, const std::vector<Row>& rows) {
  core::Table table(
      "Scenario sweep: " + scenario_name + " (cluster shape x PERIOD)",
      {"borrowers", "lenders", "instances", "PERIOD", "attached",
       "aggregate BW (GB/s)", "per-borrower BW (GB/s)",
       "min/max borrower (GB/s)"});
  for (const auto& r : rows) {
    table.row({std::to_string(r.p.borrowers), std::to_string(r.p.lenders),
               std::to_string(r.p.instances), std::to_string(r.p.period),
               r.attached ? "yes" : "NO",
               core::Table::num(r.aggregate_gbps, 3),
               core::Table::num(r.per_borrower_gbps, 3),
               core::Table::num(r.min_borrower_gbps, 3) + " / " +
                   core::Table::num(r.max_borrower_gbps, 3)});
  }
  table.print();
  table.to_csv(bench::csv_path("scenario_pooling.csv"));
}

}  // namespace

int main(int argc, char** argv) {
  sim::ArgParser args(
      "Scenario-driven cluster sweep: lender pooling, trunk sharing, and "
      "PERIOD injection on any scenarios/*.json testbed");
  args.add_string("scenario", "pooling_1xN",
                  "scenario name (scenarios/<name>.json) or path");
  args.add_string("periods", "", "injector PERIOD axis (comma-separated)");
  args.add_string("lenders", "", "lender-count axis (comma-separated)");
  args.add_string("borrowers", "", "borrower-count axis (comma-separated)");
  args.add_string("instances", "",
                  "flows per borrower axis (comma-separated)");
  if (!args.parse(argc, argv)) return 1;

  scenario::ScenarioSpec spec = bench::load_scenario(args.str("scenario"));
  const auto periods = bench::axis_values<std::uint64_t>(
      args.int_list("periods"), spec.sweep.periods, {1});
  const auto lenders = bench::axis_values<std::uint32_t>(
      args.int_list("lenders"), spec.sweep.lenders, {0});
  const auto borrowers = bench::axis_values<std::uint32_t>(
      args.int_list("borrowers"), spec.sweep.borrowers, {0});
  const auto instances = bench::axis_values<std::uint32_t>(
      args.int_list("instances"), spec.sweep.instances, {1});

  std::vector<Point> points;
  for (const auto b : borrowers) {
    for (const auto l : lenders) {
      for (const auto i : instances) {
        for (const auto period : periods) {
          points.push_back({b, l, i, period});
        }
      }
    }
  }
  const auto rows =
      bench::run_sweep("scenario_pooling", points,
                       [&](const Point& p) { return run_point(spec, p); });

  // Record the axes actually swept in the provenance echo.
  spec.sweep.periods = periods;
  spec.sweep.lenders = lenders;
  spec.sweep.borrowers = borrowers;
  spec.sweep.instances = instances;
  print_table(spec.name, rows);
  bench::echo_scenario(spec, "scenario_pooling.csv");
  return 0;
}
