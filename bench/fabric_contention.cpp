// Fabric contention: the fig6/7 cliff on a rack-scale leaf/spine fabric.
//
// B borrower-lender pairs exchange closed-loop cache-line request/response
// frames across a two-tier leaf/spine fabric (scenarios/leafspine_rack128
// by default); partners are matched onto *different* leaves, so every
// access crosses the spine tier and contends for the striped uplinks.  The
// same traffic replayed over a dumbbell (two switches, one shared trunk of
// the same per-link capacity) is the reference curve: aggregate bisection
// is S uplinks per leaf instead of one trunk, so the leaf/spine RTT cliff
// sits further out by roughly the oversubscription ratio.
//
// Reported per point: completed round trips, RTT mean/p50/p99, the hottest
// switch egress queue (peak and mean occupancy at admission -- where the
// cliff forms is visible as which port saturates), tail drops, and an
// FNV-1a digest of every per-host and per-port counter.  The digest is the
// determinism contract: frames are forwarded hop by hop with post_routed,
// so a serial run and a TFSIM_PDES=8 barrier-window run must agree
// byte-for-byte.  When $TFSIM_PDES asks for >1 worker, every point is
// re-run serially and the two digests are compared in-process -- a
// mismatch aborts the bench.
//
// Sizing: TFSIM_FABRIC_US (default 200) bounds the measured window so the
// CI smoke run stays cheap; the borrower axis comes from the scenario's
// sweep.borrowers ({16..256} in leafspine_rack128) or --borrowers.
// Results land in fabric_contention.csv plus BENCH_fabric.json (the CI
// artifact), alongside the resolved scenario echo.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "capi/frame.hpp"
#include "core/report.hpp"
#include "mem/address.hpp"
#include "net/network.hpp"
#include "net/packet.hpp"
#include "net/switch.hpp"
#include "net/topology.hpp"
#include "scenario/scenario.hpp"
#include "sim/config.hpp"
#include "sim/pdes.hpp"
#include "sim/units.hpp"

using namespace tfsim;

namespace {

// Same wire sizes the NIC puts on the fabric for a cache-line read: a
// command-only request, a response carrying the line.
constexpr std::uint64_t kReqBytes = net::kPacketHeaderBytes + capi::kFrameBytes;
constexpr std::uint64_t kRespBytes =
    net::kPacketHeaderBytes + capi::kFrameBytes + mem::kCacheLineBytes;
constexpr int kChainsPerBorrower = 8;

const std::vector<std::uint32_t> kDefaultBorrowers = {16, 32, 64, 128, 256};

/// FNV-1a over the result string, so any per-host or per-port divergence
/// between thread counts flips the reported digest.
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

/// One measured fabric (leaf/spine point or dumbbell reference).
struct PointResult {
  std::uint64_t completed = 0;     ///< round trips finished in the window
  std::uint64_t chains_lost = 0;   ///< chains ended by a tail drop
  double rtt_mean_us = 0.0;
  double rtt_p50_us = 0.0;
  double rtt_p99_us = 0.0;
  std::uint64_t peak_queue_bytes = 0;  ///< hottest egress port, peak
  double mean_queue_bytes = 0.0;       ///< hottest egress port, mean
  std::uint64_t switch_drops = 0;
  std::uint64_t digest = 0;
};

struct FabricUnderTest {
  net::Network net;
  std::vector<net::NodeId> partner;   ///< borrower id -> lender id
  std::vector<net::NodeId> switches;  ///< ids, for the domain count
};

/// Hosts 0..B-1 are borrowers, B..2B-1 lenders, matched cross-leaf: a
/// deterministic greedy scan pairs each borrower with the first unused
/// lender on a different leaf, so every chain crosses the spine tier.
void build_leafspine(FabricUnderTest& f, const scenario::TopologySpec& topo,
                     std::uint32_t borrowers) {
  std::vector<net::NodeId> hosts;
  for (std::uint32_t i = 0; i < 2 * borrowers; ++i) {
    std::string name = i < borrowers ? "b" : "l";
    name += std::to_string(i % borrowers);
    hosts.push_back(f.net.add_node(name));
  }
  net::LeafSpineConfig cfg;
  cfg.leaves = topo.leaves;
  cfg.spines = topo.spines;
  cfg.edge = topo.link;
  cfg.uplink = topo.uplink;
  cfg.sw = topo.sw;
  const auto rack = net::LeafSpineFabric::build(f.net, cfg, hosts);
  f.switches.insert(f.switches.end(), rack.leaves.begin(), rack.leaves.end());
  f.switches.insert(f.switches.end(), rack.spines.begin(), rack.spines.end());

  f.partner.assign(borrowers, 0);
  std::vector<bool> used(borrowers, false);
  for (std::uint32_t i = 0; i < borrowers; ++i) {
    std::uint32_t pick = borrowers;  // fallback: first unused, any leaf
    for (std::uint32_t k = 0; k < borrowers; ++k) {
      const std::uint32_t j = (i + 1 + k) % borrowers;
      if (used[j]) continue;
      if (pick == borrowers) pick = j;
      if (rack.leaf_of(borrowers + j) != rack.leaf_of(i)) {
        pick = j;
        break;
      }
    }
    used[pick] = true;
    f.partner[i] = static_cast<net::NodeId>(borrowers + pick);
  }
}

/// The dumbbell reference: borrowers -- switchA == trunk == switchB --
/// lenders, with the trunk at the *same per-link capacity* as one spine
/// uplink, so the comparison isolates the striping (1 shared hop vs
/// leaves x spines parallel uplinks).
void build_dumbbell(FabricUnderTest& f, const scenario::TopologySpec& topo,
                    std::uint32_t borrowers) {
  for (std::uint32_t i = 0; i < 2 * borrowers; ++i) {
    std::string name = i < borrowers ? "b" : "l";
    name += std::to_string(i % borrowers);
    f.net.add_node(name);
  }
  const net::NodeId sa = f.net.add_switch("switch-a", topo.sw);
  const net::NodeId sb = f.net.add_switch("switch-b", topo.sw);
  f.switches = {sa, sb};
  for (std::uint32_t i = 0; i < borrowers; ++i) {
    f.net.connect(i, sa, topo.link);
    f.net.connect(sa, i, topo.link);
    f.net.connect(borrowers + i, sb, topo.link);
    f.net.connect(sb, borrowers + i, topo.link);
  }
  f.net.connect(sa, sb, topo.uplink);
  f.net.connect(sb, sa, topo.uplink);
  f.net.build_routes();
  f.partner.assign(borrowers, 0);
  for (std::uint32_t i = 0; i < borrowers; ++i) {
    f.partner[i] = static_cast<net::NodeId>(borrowers + i);
  }
}

/// Drive kChainsPerBorrower closed-loop request/response chains per
/// borrower for `window` sim time and fold every observable into the
/// result.  All traffic is post_routed, so the run is valid (and
/// byte-identical) for any PDES worker count.
PointResult run_traffic(FabricUnderTest& f, std::uint32_t borrowers,
                        sim::Time window, unsigned threads) {
  sim::PdesConfig cfg;
  cfg.threads = threads;
  cfg.lookahead = f.net.min_propagation();
  sim::ParallelEngine pdes(2 * borrowers + f.switches.size(), cfg);

  // Per-borrower state, only ever touched from the owning domain.
  std::vector<std::vector<std::uint64_t>> rtts(borrowers);
  const sim::Time stop = window;

  std::function<void(net::NodeId, std::uint64_t)> issue =
      [&](net::NodeId b, std::uint64_t flow) {
        sim::Engine& self = pdes.domain(static_cast<sim::DomainId>(b));
        if (self.now() >= stop) return;
        const net::NodeId lender = f.partner[b];
        const sim::Time t0 = self.now();
        // A tail-dropped frame ends the chain: on_arrival never fires and
        // the borrower's window closes with one fewer live chain.  The NIC
        // layer retries; this bench measures the raw fabric, so a loss is
        // simply recorded (chains_lost) at drain time via the rtt count.
        f.net.post_routed(
            pdes, t0, b, lender, kReqBytes, sim::Priority::kLatency, flow,
            [&, b, lender, flow, t0](const net::Delivery&) {
              sim::Engine& at_lender =
                  pdes.domain(static_cast<sim::DomainId>(lender));
              f.net.post_routed(
                  pdes, at_lender.now(), lender, b, kRespBytes,
                  sim::Priority::kBulk, flow,
                  [&, b, flow, t0](const net::Delivery& resp) {
                    rtts[b].push_back(resp.arrival - t0);
                    issue(b, flow);
                  });
            });
      };

  for (std::uint32_t b = 0; b < borrowers; ++b) {
    for (int c = 0; c < kChainsPerBorrower; ++c) {
      // Stagger starts inside the first lookahead window; the offsets are a
      // pure function of (b, c), so the schedule is seed-free determinism.
      const sim::Time start =
          1 + (static_cast<sim::Time>(b) * 131 + static_cast<sim::Time>(c)) %
                  cfg.lookahead;
      const auto flow = static_cast<std::uint64_t>(b) * kChainsPerBorrower +
                        static_cast<std::uint64_t>(c);
      pdes.post(static_cast<sim::DomainId>(b), static_cast<sim::DomainId>(b),
                start, [&issue, b, flow] {
                  issue(static_cast<net::NodeId>(b), flow);
                });
    }
  }
  pdes.run();

  // Serialize every observable in fixed (host, then switch/port) order --
  // the digest input and the source of all reported statistics.
  std::ostringstream os;
  PointResult r;
  std::vector<std::uint64_t> all;
  for (std::uint32_t b = 0; b < borrowers; ++b) {
    os << b << ":" << rtts[b].size() << ";";
    r.completed += rtts[b].size();
    all.insert(all.end(), rtts[b].begin(), rtts[b].end());
    for (const std::uint64_t v : rtts[b]) os << v << ",";
  }
  for (const net::NodeId sw : f.switches) {
    const net::Switch& s = f.net.switch_at(sw);
    os << "S" << sw << "=" << s.total_drops();
    r.switch_drops += s.total_drops();
    for (const auto& [egress, port] : s.ports()) {
      os << ",p" << egress << ":" << port.frames << ":" << port.bytes << ":"
         << port.drops << ":" << port.peak_queued_bytes;
      if (port.peak_queued_bytes >= r.peak_queue_bytes) {
        r.peak_queue_bytes = port.peak_queued_bytes;
        r.mean_queue_bytes = port.mean_queued_bytes();
      }
    }
    os << ";";
  }
  r.digest = fnv1a(os.str());

  std::sort(all.begin(), all.end());
  if (!all.empty()) {
    double sum = 0.0;
    for (const std::uint64_t v : all) sum += static_cast<double>(v);
    r.rtt_mean_us = sim::to_us(static_cast<sim::Time>(sum / all.size()));
    r.rtt_p50_us = sim::to_us(all[all.size() / 2]);
    r.rtt_p99_us = sim::to_us(all[all.size() - 1 - all.size() / 100]);
  }
  // Every frame belongs to exactly one closed-loop chain and a dropped
  // frame ends that chain for good, so the drop count is the chain count.
  r.chains_lost = r.switch_drops;
  return r;
}

PointResult run_point(const scenario::TopologySpec& topo,
                      scenario::TopologyKind kind, std::uint32_t borrowers,
                      sim::Time window, unsigned threads) {
  FabricUnderTest f;
  if (kind == scenario::TopologyKind::kLeafSpine) {
    build_leafspine(f, topo, borrowers);
  } else {
    build_dumbbell(f, topo, borrowers);
  }
  PointResult r = run_traffic(f, borrowers, window, threads);
  if (threads > 1) {
    // The determinism contract, checked in-process: the serial reference
    // must produce the identical digest for this point.
    FabricUnderTest g;
    if (kind == scenario::TopologyKind::kLeafSpine) {
      build_leafspine(g, topo, borrowers);
    } else {
      build_dumbbell(g, topo, borrowers);
    }
    const PointResult serial = run_traffic(g, borrowers, window, 1);
    if (serial.digest != r.digest) {
      std::fprintf(stderr,
                   "fabric_contention: PDES digest mismatch at B=%u "
                   "(serial %llu vs %u-thread %llu)\n",
                   borrowers, static_cast<unsigned long long>(serial.digest),
                   threads, static_cast<unsigned long long>(r.digest));
      std::exit(1);
    }
  }
  return r;
}

void write_bench_json(const std::string& path, const std::string& scenario,
                      double window_us, unsigned threads,
                      const std::vector<std::uint32_t>& axis,
                      const std::vector<std::pair<PointResult, PointResult>>&
                          rows) {
  std::ofstream out(path);
  out << "{\n  \"context\": {\"bench\": \"fabric_contention\", \"scenario\": \""
      << scenario << "\", \"window_us\": " << window_us
      << ", \"pdes_threads\": " << threads << "},\n  \"benchmarks\": [\n";
  const auto emit = [&out](const char* fabric, std::uint32_t b,
                           const PointResult& r, bool last) {
    out << "    {\"name\": \"fabric/" << fabric << "/B=" << b
        << "\", \"completed\": " << r.completed
        << ", \"rtt_mean_us\": " << r.rtt_mean_us
        << ", \"rtt_p50_us\": " << r.rtt_p50_us
        << ", \"rtt_p99_us\": " << r.rtt_p99_us
        << ", \"peak_queue_bytes\": " << r.peak_queue_bytes
        << ", \"mean_queue_bytes\": " << r.mean_queue_bytes
        << ", \"switch_drops\": " << r.switch_drops << ", \"digest\": \""
        << r.digest << "\"}" << (last ? "\n" : ",\n");
  };
  for (std::size_t i = 0; i < axis.size(); ++i) {
    emit("leafspine", axis[i], rows[i].first, false);
    emit("dumbbell", axis[i], rows[i].second, i + 1 == axis.size());
  }
  out << "  ]\n}\n";
  std::printf("bench JSON -> %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  sim::ArgParser args(
      "Fabric contention: leaf/spine RTT cliff vs the dumbbell trunk");
  args.add_string("scenario", "leafspine_rack128",
                  "scenario name (scenarios/<name>.json) or path");
  args.add_string("borrowers", "",
                  "borrower-pair axis override (comma-separated)");
  if (!args.parse(argc, argv)) return 1;

  scenario::ScenarioSpec spec = bench::load_scenario(args.str("scenario"));
  if (spec.topology.kind != scenario::TopologyKind::kLeafSpine) {
    std::fprintf(stderr,
                 "error: scenario \"%s\" declares a %s topology; "
                 "fabric_contention needs leaf_spine\n",
                 spec.name.c_str(), to_string(spec.topology.kind).c_str());
    return 2;
  }
  const auto axis = bench::axis_values<std::uint32_t>(
      args.int_list("borrowers"), spec.sweep.borrowers, kDefaultBorrowers);
  const double window_us =
      static_cast<double>(bench::env_u64("TFSIM_FABRIC_US", 200));
  const sim::Time window = sim::from_us(window_us);
  const unsigned threads = sim::PdesConfig::threads_from_env();

  const auto rows = bench::run_sweep(
      "fabric_contention", axis, [&](std::uint32_t b) {
        return std::make_pair(
            run_point(spec.topology, scenario::TopologyKind::kLeafSpine, b,
                      window, threads),
            run_point(spec.topology, scenario::TopologyKind::kDumbbell, b,
                      window, threads));
      });

  core::Table table(
      "Fabric contention: " + std::to_string(spec.topology.leaves) + "x" +
          std::to_string(spec.topology.spines) +
          " leaf/spine vs dumbbell trunk (window " +
          core::Table::num(window_us, 0) + " us)",
      {"borrower pairs", "LS RTT p50/p99 (us)", "LS peak queue (KiB)",
       "LS drops", "DB RTT p50/p99 (us)", "DB peak queue (KiB)", "DB drops",
       "LS digest"});
  for (std::size_t i = 0; i < axis.size(); ++i) {
    const PointResult& ls = rows[i].first;
    const PointResult& db = rows[i].second;
    table.row({std::to_string(axis[i]),
               core::Table::num(ls.rtt_p50_us, 3) + " / " +
                   core::Table::num(ls.rtt_p99_us, 3),
               core::Table::num(ls.peak_queue_bytes / 1024.0, 1),
               std::to_string(ls.switch_drops),
               core::Table::num(db.rtt_p50_us, 3) + " / " +
                   core::Table::num(db.rtt_p99_us, 3),
               core::Table::num(db.peak_queue_bytes / 1024.0, 1),
               std::to_string(db.switch_drops), std::to_string(ls.digest)});
  }
  table.print();
  table.to_csv(bench::csv_path("fabric_contention.csv"));
  std::puts(
      "Paper shape: the dumbbell trunk saturates first (RTT cliff + queue "
      "growth at low B); ECMP striping across the spine uplinks moves the "
      "cliff out by ~the oversubscription ratio.");

  write_bench_json(bench::csv_path("BENCH_fabric.json"), spec.name, window_us,
                   threads, axis, rows);
  spec.sweep.borrowers = axis;
  bench::echo_scenario(spec, "fabric_contention.csv");
  return 0;
}
