// Figure 7: contention for bandwidth at the lender node (MCLN).
//
// One STREAM instance on the borrower uses disaggregated memory while N
// STREAM instances hammer the lender's local memory bus.  The lender bus
// (100s of GB/s) dwarfs the network (100 Gb/s), so borrower-visible
// bandwidth stays flat regardless of lender-side load -- the paper's
// insight that busy and idle lenders are equally viable.
//
// Each lender load level is an independent Testbed, so the sweep fans out
// across $TFSIM_JOBS workers; the table/CSV are identical for any count.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "core/report.hpp"
#include "node/testbed.hpp"
#include "sim/config.hpp"
#include "workloads/stream/stream_flow.hpp"

using namespace tfsim;

namespace {

const std::vector<std::uint32_t> kLenderInstances = {0, 1, 2, 4, 8};

struct Row {
  int lender_instances = 0;
  double borrower_gbps = 0.0;
  double lender_aggregate_gbps = 0.0;
  double lender_bus_utilization = 0.0;
};

Row run_point(const node::TestbedSpec& spec, int n) {
  node::Testbed testbed(spec);
  testbed.attach_remote();
  const sim::Time measure_end = sim::from_ms(20.0);

  workloads::FlowConfig borrower_cfg;
  borrower_cfg.concurrency = 128;
  borrower_cfg.base = testbed.remote_base();
  borrower_cfg.span_bytes = 512 * sim::kMiB;
  borrower_cfg.stop_at = measure_end;
  workloads::RemoteStreamFlow borrower_flow(
      testbed.engine(), testbed.borrower().nic(), borrower_cfg);

  std::vector<std::unique_ptr<workloads::LocalStreamFlow>> lender_flows;
  for (int i = 0; i < n; ++i) {
    workloads::FlowConfig cfg;
    cfg.concurrency = 64;  // a full STREAM instance's worth of demand
    cfg.stop_at = measure_end;
    lender_flows.push_back(std::make_unique<workloads::LocalStreamFlow>(
        testbed.engine(), testbed.lender().dram(), cfg));
  }

  borrower_flow.start();
  for (auto& f : lender_flows) f->start();
  testbed.engine().run();

  Row row{n, borrower_flow.stats().bandwidth_gbps(measure_end), 0.0,
          testbed.lender().dram().utilization(measure_end)};
  for (auto& f : lender_flows) {
    row.lender_aggregate_gbps += f->stats().bandwidth_gbps(measure_end);
  }
  return row;
}

void print_table(const std::vector<Row>& rows) {
  core::Table table(
      "Figure 7: memory contention at the lender node (MCLN)",
      {"lender STREAM instances", "borrower BW (GB/s)",
       "lender local BW (GB/s)", "lender bus utilization"});
  for (const auto& r : rows) {
    table.row({std::to_string(r.lender_instances),
               core::Table::num(r.borrower_gbps, 3),
               core::Table::num(r.lender_aggregate_gbps, 1),
               core::Table::num(r.lender_bus_utilization * 100.0, 1) + "%"});
  }
  table.print();
  table.to_csv(bench::csv_path("fig7_contention_lender.csv"));
  std::puts("Paper shape: borrower bandwidth independent of lender-side"
            " instance count (network remains the bottleneck).");
}

}  // namespace

int main(int argc, char** argv) {
  sim::ArgParser args(
      "Figure 7: memory contention at the lender node (MCLN)");
  args.add_string("scenario", "paper_twonode",
                  "scenario name (scenarios/<name>.json) or path");
  args.add_string("instances", "",
                  "lender-side STREAM instance axis override (comma-separated)");
  if (!args.parse(argc, argv)) return 1;

  scenario::ScenarioSpec spec = bench::load_scenario(args.str("scenario"));
  const node::TestbedSpec testbed = node::to_testbed_spec(spec);
  const auto counts = bench::axis_values<std::uint32_t>(
      args.int_list("instances"), spec.sweep.instances, kLenderInstances);

  const auto rows = bench::run_sweep(
      "fig7_contention_lender", counts, [&](std::uint32_t n) {
        return run_point(testbed, static_cast<int>(n));
      });
  print_table(rows);
  spec.sweep.instances = counts;
  bench::echo_scenario(spec, "fig7_contention_lender.csv");
  return 0;
}
