// Figure 6: contention for bandwidth at the borrower node (MCBN).
//
// N concurrent STREAM instances run on the borrower, all using
// disaggregated memory from the lender.  They compete for the bottleneck
// network bandwidth, so per-instance bandwidth is ~total/N (the round-robin
// egress divides it equally) while aggregate stays flat.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "core/report.hpp"
#include "node/testbed.hpp"
#include "workloads/stream/stream_flow.hpp"

using namespace tfsim;

namespace {

constexpr int kInstanceCounts[] = {1, 2, 4, 8};

struct Row {
  int instances;
  double per_instance_gbps;
  double aggregate_gbps;
  double min_instance_gbps;
  double max_instance_gbps;
};
std::vector<Row> g_rows;

void BM_Mcbn(benchmark::State& state) {
  const int n = kInstanceCounts[state.range(0)];
  for (auto _ : state) {
    node::Testbed testbed;
    testbed.attach_remote();
    const sim::Time measure_end = sim::from_ms(20.0);

    std::vector<std::unique_ptr<workloads::RemoteStreamFlow>> flows;
    const std::uint64_t span = 512 * sim::kMiB;
    for (int i = 0; i < n; ++i) {
      workloads::FlowConfig cfg;
      cfg.concurrency = 128;  // one full STREAM instance saturates the NIC
      cfg.base = testbed.remote_base() + static_cast<std::uint64_t>(i) * span;
      cfg.span_bytes = span;
      cfg.stop_at = measure_end;
      flows.push_back(std::make_unique<workloads::RemoteStreamFlow>(
          testbed.engine(), testbed.borrower().nic(), cfg));
    }
    for (auto& f : flows) f->start();
    testbed.engine().run();

    Row row{n, 0, 0, 1e30, 0};
    for (auto& f : flows) {
      const double bw = f->stats().bandwidth_gbps(measure_end);
      row.aggregate_gbps += bw;
      row.min_instance_gbps = std::min(row.min_instance_gbps, bw);
      row.max_instance_gbps = std::max(row.max_instance_gbps, bw);
    }
    row.per_instance_gbps = row.aggregate_gbps / n;
    state.counters["per_instance_gbps"] = row.per_instance_gbps;
    state.counters["aggregate_gbps"] = row.aggregate_gbps;
    g_rows.push_back(row);
  }
}
BENCHMARK(BM_Mcbn)->DenseRange(0, static_cast<int>(std::size(kInstanceCounts)) - 1)
    ->Iterations(1)->Unit(benchmark::kMillisecond)->ArgNames({"idx"});

void print_table() {
  core::Table table(
      "Figure 6: memory contention at the borrower node (MCBN)",
      {"STREAM instances", "per-instance BW (GB/s)", "aggregate BW (GB/s)",
       "min/max instance (GB/s)"});
  for (const auto& r : g_rows) {
    table.row({std::to_string(r.instances),
               core::Table::num(r.per_instance_gbps, 3),
               core::Table::num(r.aggregate_gbps, 3),
               core::Table::num(r.min_instance_gbps, 3) + " / " +
                   core::Table::num(r.max_instance_gbps, 3)});
  }
  table.print();
  table.to_csv(bench::csv_path("fig6_contention_borrower.csv"));
  std::puts("Paper shape: equal division of the bottleneck network bandwidth"
            " among competing instances (per-instance ~ total/N).");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_table();
  return 0;
}
