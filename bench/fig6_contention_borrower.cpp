// Figure 6: contention for bandwidth at the borrower node (MCBN).
//
// N concurrent STREAM instances run on the borrower, all using
// disaggregated memory from the lender.  They compete for the bottleneck
// network bandwidth, so per-instance bandwidth is ~total/N (the round-robin
// egress divides it equally) while aggregate stays flat.
//
// Each instance count is an independent Testbed, so the sweep fans out
// across $TFSIM_JOBS workers; the table/CSV are identical for any count.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "core/report.hpp"
#include "node/testbed.hpp"
#include "sim/config.hpp"
#include "workloads/stream/stream_flow.hpp"

using namespace tfsim;

namespace {

const std::vector<std::uint32_t> kInstanceCounts = {1, 2, 4, 8};

struct Row {
  int instances = 0;
  double per_instance_gbps = 0.0;
  double aggregate_gbps = 0.0;
  double min_instance_gbps = 0.0;
  double max_instance_gbps = 0.0;
};

Row run_point(const node::TestbedSpec& spec, int n) {
  node::Testbed testbed(spec);
  testbed.attach_remote();
  const sim::Time measure_end = sim::from_ms(20.0);

  std::vector<std::unique_ptr<workloads::RemoteStreamFlow>> flows;
  const std::uint64_t span = 512 * sim::kMiB;
  for (int i = 0; i < n; ++i) {
    workloads::FlowConfig cfg;
    cfg.concurrency = 128;  // one full STREAM instance saturates the NIC
    cfg.base = testbed.remote_base() + static_cast<std::uint64_t>(i) * span;
    cfg.span_bytes = span;
    cfg.stop_at = measure_end;
    flows.push_back(std::make_unique<workloads::RemoteStreamFlow>(
        testbed.engine(), testbed.borrower().nic(), cfg));
  }
  for (auto& f : flows) f->start();
  testbed.engine().run();

  Row row{n, 0, 0, 1e30, 0};
  for (auto& f : flows) {
    const double bw = f->stats().bandwidth_gbps(measure_end);
    row.aggregate_gbps += bw;
    row.min_instance_gbps = std::min(row.min_instance_gbps, bw);
    row.max_instance_gbps = std::max(row.max_instance_gbps, bw);
  }
  row.per_instance_gbps = row.aggregate_gbps / n;
  return row;
}

void print_table(const std::vector<Row>& rows) {
  core::Table table(
      "Figure 6: memory contention at the borrower node (MCBN)",
      {"STREAM instances", "per-instance BW (GB/s)", "aggregate BW (GB/s)",
       "min/max instance (GB/s)"});
  for (const auto& r : rows) {
    table.row({std::to_string(r.instances),
               core::Table::num(r.per_instance_gbps, 3),
               core::Table::num(r.aggregate_gbps, 3),
               core::Table::num(r.min_instance_gbps, 3) + " / " +
                   core::Table::num(r.max_instance_gbps, 3)});
  }
  table.print();
  table.to_csv(bench::csv_path("fig6_contention_borrower.csv"));
  std::puts("Paper shape: equal division of the bottleneck network bandwidth"
            " among competing instances (per-instance ~ total/N).");
}

}  // namespace

int main(int argc, char** argv) {
  sim::ArgParser args(
      "Figure 6: memory contention at the borrower node (MCBN)");
  args.add_string("scenario", "paper_twonode",
                  "scenario name (scenarios/<name>.json) or path");
  args.add_string("instances", "",
                  "STREAM instance-count axis override (comma-separated)");
  if (!args.parse(argc, argv)) return 1;

  scenario::ScenarioSpec spec = bench::load_scenario(args.str("scenario"));
  const node::TestbedSpec testbed = node::to_testbed_spec(spec);
  const auto counts = bench::axis_values<std::uint32_t>(
      args.int_list("instances"), spec.sweep.instances, kInstanceCounts);

  const auto rows = bench::run_sweep(
      "fig6_contention_borrower", counts, [&](std::uint32_t n) {
        return run_point(testbed, static_cast<int>(n));
      });
  print_table(rows);
  spec.sweep.instances = counts;
  bench::echo_scenario(spec, "fig6_contention_borrower.csv");
  return 0;
}
