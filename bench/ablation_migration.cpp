// Ablation: hot-page migration (the paper's proposed OS-level mechanism).
//
// Under sustained delay injection, latency-sensitive pages (Graph500's
// parent/visited arrays, re-touched across epochs) migrate to local DRAM,
// while streaming pages (the adjacency arrays, one burst each) never
// qualify.  STREAM therefore sees no benefit -- its entire footprint is
// single-burst -- which is exactly the selectivity an OS policy needs.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench_common.hpp"
#include "core/metrics.hpp"
#include "core/report.hpp"
#include "core/session.hpp"

using namespace tfsim;

namespace {

constexpr std::uint64_t kPeriod = 32;  // sustained moderate delay

struct Row {
  std::string workload;
  sim::Time off = 0;
  sim::Time on = 0;
  std::uint64_t pages_migrated = 0;
  std::uint64_t mb_migrated = 0;
};
std::vector<Row> g_rows;

const workloads::g500::EdgeList& shared_edges() {
  static const workloads::g500::EdgeList el = [] {
    auto cfg = bench::graph_config();
    cfg.gen.scale = std::min<std::uint32_t>(cfg.gen.scale, 18);
    return workloads::g500::kronecker_generate(cfg.gen);
  }();
  return el;
}

core::SessionConfig session_cfg(bool migration_on) {
  core::SessionConfig cfg;
  cfg.period = kPeriod;
  if (migration_on) cfg.migration = node::MigrationConfig{};
  return cfg;
}

void BM_MigrationBfs(benchmark::State& state) {
  const bool on = state.range(0) != 0;
  for (auto _ : state) {
    core::Session session(session_cfg(on));
    auto gcfg = bench::graph_config();
    gcfg.gen.scale = std::min<std::uint32_t>(gcfg.gen.scale, 18);
    const auto job = session.run_bfs_job(gcfg, shared_edges(), 1);
    state.counters["job_ms"] = sim::to_ms(job.total());
    if (g_rows.empty() || g_rows.back().workload != "Graph500 BFS job") {
      g_rows.push_back(Row{"Graph500 BFS job", 0, 0, 0, 0});
    }
    auto& row = g_rows.back();
    (on ? row.on : row.off) = job.total();
    if (on) {
      const auto* m = session.testbed().borrower().migrator();
      row.pages_migrated = m->stats().pages_migrated;
      row.mb_migrated = m->stats().bytes_migrated >> 20;
    }
  }
}

void BM_MigrationStream(benchmark::State& state) {
  const bool on = state.range(0) != 0;
  for (auto _ : state) {
    core::Session session(session_cfg(on));
    const auto res = session.run_stream(bench::stream_config());
    state.counters["elapsed_ms"] = sim::to_ms(res.total_elapsed);
    if (g_rows.empty() || g_rows.back().workload != "STREAM") {
      g_rows.push_back(Row{"STREAM", 0, 0, 0, 0});
    }
    auto& row = g_rows.back();
    (on ? row.on : row.off) = res.total_elapsed;
    if (on) {
      const auto* m = session.testbed().borrower().migrator();
      row.pages_migrated = m->stats().pages_migrated;
      row.mb_migrated = m->stats().bytes_migrated >> 20;
    }
  }
}

BENCHMARK(BM_MigrationBfs)->Arg(0)->Arg(1)->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MigrationStream)->Arg(0)->Arg(1)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void print_table() {
  core::Table table(
      "Ablation: hot-page migration under PERIOD=" + std::to_string(kPeriod) +
          " injection",
      {"workload", "migration off (ms)", "migration on (ms)", "speedup",
       "pages migrated", "MB migrated"});
  for (const auto& r : g_rows) {
    table.row({r.workload, core::Table::num(sim::to_ms(r.off), 1),
               core::Table::num(sim::to_ms(r.on), 1),
               core::Table::ratio(core::degradation_from_times(r.off, r.on)),
               std::to_string(r.pages_migrated),
               std::to_string(r.mb_migrated)});
  }
  table.print();
  table.to_csv(bench::csv_path("ablation_migration.csv"));
  std::puts("Migration rescues the workload whose hot set is small and"
            " re-accessed (Graph500's parent array) and correctly declines"
            " to chase single-burst streams (STREAM).");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_table();
  return 0;
}
