// Ablation (paper §V limitation / §VII future work): fixed vs
// distribution-driven delay injection.
//
// The paper's injector adds a near-constant delay and flags variable
// (within-run) delay as future work.  Here the same *mean* extra delay is
// injected four ways -- fixed, uniform, exponential, lognormal, pareto --
// and STREAM plus Graph500 BFS report how much the distribution's shape
// (not just its mean) matters.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench_common.hpp"
#include "core/report.hpp"
#include "core/session.hpp"
#include "net/latency_dist.hpp"

using namespace tfsim;

namespace {

constexpr net::DistKind kKinds[] = {
    net::DistKind::kFixed, net::DistKind::kUniform,
    net::DistKind::kExponential, net::DistKind::kLognormal,
    net::DistKind::kPareto};
constexpr double kMeanDelayUs = 2.0;  ///< per-transaction extra delay

struct Row {
  std::string kind;
  double stream_latency_us;
  double stream_bw_gbps;
  double bfs_job_ms;
};
std::vector<Row> g_rows;

const workloads::g500::EdgeList& shared_edges() {
  static const workloads::g500::EdgeList el = [] {
    auto cfg = bench::graph_config();
    cfg.gen.scale = std::min<std::uint32_t>(cfg.gen.scale, 18);  // sweep x5
    return workloads::g500::kronecker_generate(cfg.gen);
  }();
  return el;
}

void BM_Distribution(benchmark::State& state) {
  const auto kind = kKinds[state.range(0)];
  for (auto _ : state) {
    core::SessionConfig cfg;
    cfg.dist_kind = kind;
    cfg.dist_mean = sim::from_us(kMeanDelayUs);
    core::Session session(cfg);

    const auto stream = session.run_stream(bench::stream_config());

    auto gcfg = bench::graph_config();
    gcfg.gen.scale = std::min<std::uint32_t>(gcfg.gen.scale, 18);
    const auto job = session.run_bfs_job(gcfg, shared_edges(), 1);

    Row row{net::to_string(kind), stream.avg_latency_us,
            stream.best_bandwidth_gbps, sim::to_ms(job.total())};
    state.counters["stream_lat_us"] = row.stream_latency_us;
    state.counters["bfs_job_ms"] = row.bfs_job_ms;
    g_rows.push_back(row);
  }
}
BENCHMARK(BM_Distribution)->DenseRange(0, static_cast<int>(std::size(kKinds)) - 1)
    ->Iterations(1)->Unit(benchmark::kMillisecond)->ArgNames({"idx"});

void print_table() {
  core::Table table(
      "Ablation: delay distribution shape at equal mean (" +
          core::Table::num(kMeanDelayUs, 1) + " us/transaction)",
      {"distribution", "STREAM latency (us)", "STREAM BW (GB/s)",
       "BFS job (ms)"});
  for (const auto& r : g_rows) {
    table.row({r.kind, core::Table::num(r.stream_latency_us, 2),
               core::Table::num(r.stream_bw_gbps, 3),
               core::Table::num(r.bfs_job_ms, 1)});
  }
  table.print();
  table.to_csv(bench::csv_path("ablation_delay_distribution.csv"));
  std::puts("Heavy-tailed injection (pareto/lognormal) degrades latency-bound"
            " workloads beyond what the mean alone predicts -- the paper's"
            " motivation for distribution-driven injection as future work.");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_table();
  return 0;
}
