// Ablation: the QoS mechanisms the paper's insight #2 calls for.
//
// "Resource allocation mechanisms need to enable Quality-of-Service
// features to support workloads that are sensitive to memory access latency
// increase."  Here a latency-sensitive probe (a pointer-chase-like flow
// with 4 outstanding lines) shares the borrower NIC with bulk STREAM
// traffic that saturates the window and the link.  Three configurations:
//
//   off        probe is ordinary bulk traffic
//   net-prio   probe packets bypass bulk backlog on every network hop
//   net+mshr   additionally, 16 window slots are reserved for the
//              latency class (MSHR partitioning)
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "core/report.hpp"
#include "node/testbed.hpp"
#include "workloads/stream/stream_flow.hpp"

using namespace tfsim;

namespace {

struct QosResult {
  std::string mode;
  double probe_latency_us;
  double probe_p_bw_gbps;
  double bulk_aggregate_gbps;
};
std::vector<QosResult> g_rows;

QosResult run_mode(const std::string& mode) {
  node::TestbedSpec spec = node::thymesisflow_testbed();
  if (mode == "net+mshr") {
    spec.borrower.nic.latency_reserved_entries = 16;
  }
  node::Testbed tb(spec);
  tb.attach_remote();
  const sim::Time horizon = sim::from_ms(20.0);

  // Bulk background: two saturating flows.
  std::vector<std::unique_ptr<workloads::RemoteStreamFlow>> bulk;
  for (int i = 0; i < 2; ++i) {
    workloads::FlowConfig cfg;
    cfg.concurrency = 128;
    cfg.base = tb.remote_base() + static_cast<std::uint64_t>(i) * 512 * sim::kMiB;
    cfg.span_bytes = 512 * sim::kMiB;
    cfg.stop_at = horizon;
    cfg.priority = sim::Priority::kBulk;
    bulk.push_back(std::make_unique<workloads::RemoteStreamFlow>(
        tb.engine(), tb.borrower().nic(), cfg));
  }

  // Latency-sensitive probe.
  workloads::FlowConfig pcfg;
  pcfg.concurrency = 4;
  pcfg.base = tb.remote_base() + 2 * 512 * sim::kMiB;
  pcfg.span_bytes = 64 * sim::kMiB;
  pcfg.stop_at = horizon;
  pcfg.priority =
      mode == "off" ? sim::Priority::kBulk : sim::Priority::kLatency;
  workloads::RemoteStreamFlow probe(tb.engine(), tb.borrower().nic(), pcfg);

  for (auto& f : bulk) f->start();
  probe.start();
  tb.engine().run();

  QosResult r;
  r.mode = mode;
  r.probe_latency_us = probe.stats().latency_us.mean();
  r.probe_p_bw_gbps = probe.stats().bandwidth_gbps(horizon);
  r.bulk_aggregate_gbps = 0;
  for (auto& f : bulk) {
    r.bulk_aggregate_gbps += f->stats().bandwidth_gbps(horizon);
  }
  return r;
}

const char* kModes[] = {"off", "net-prio", "net+mshr"};

void BM_Qos(benchmark::State& state) {
  const std::string mode = kModes[state.range(0)];
  for (auto _ : state) {
    const auto r = run_mode(mode);
    state.counters["probe_lat_us"] = r.probe_latency_us;
    state.counters["bulk_gbps"] = r.bulk_aggregate_gbps;
    g_rows.push_back(r);
  }
}
BENCHMARK(BM_Qos)->DenseRange(0, 2)->Iterations(1)
    ->Unit(benchmark::kMillisecond)->ArgNames({"idx"});

void print_table() {
  core::Table table(
      "Ablation: QoS for a latency-sensitive flow under bulk saturation",
      {"QoS mode", "probe latency (us)", "probe BW (GB/s)",
       "bulk aggregate (GB/s)"});
  for (const auto& r : g_rows) {
    table.row({r.mode, core::Table::num(r.probe_latency_us, 2),
               core::Table::num(r.probe_p_bw_gbps, 3),
               core::Table::num(r.bulk_aggregate_gbps, 3)});
  }
  table.print();
  table.to_csv(bench::csv_path("ablation_qos.csv"));
  std::puts("Network prioritization alone helps; reserving MSHR slots"
            " recovers near-unloaded latency for the sensitive flow while"
            " bulk throughput barely moves -- the QoS feature the paper"
            " argues future resource control must provide.");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_table();
  return 0;
}
