// Ablation (paper §V): memory borrowing vs memory pooling.
//
// Borrowing: each borrower reaches a full lender *server* whose memory bus
// (~140 GB/s) dwarfs the network -- lender-side contention is invisible
// (Fig. 7).  Pooling: borrowers share a CPU-less memory pool whose
// controller has DDR-channel-class bandwidth; as borrowers multiply, the
// bottleneck shifts from each borrower's network link to the pool itself,
// exactly the shift the paper predicts would change its §IV-E conclusions.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "core/report.hpp"
#include "mem/dram.hpp"
#include "net/network.hpp"
#include "node/node.hpp"
#include "sim/engine.hpp"
#include "workloads/stream/stream_flow.hpp"

using namespace tfsim;

namespace {

constexpr int kBorrowerCounts[] = {1, 2, 4, 8};

struct Row {
  int borrowers;
  double borrowing_per_instance_gbps;
  double pooling_per_instance_gbps;
};
std::vector<Row> g_rows;

/// Build N borrowers attached to one memory target and measure per-instance
/// streaming bandwidth.  `target_bw` distinguishes a lender server's bus
/// from a pool controller.
double run_scenario(int n, sim::Bandwidth target_bw) {
  sim::Engine engine;
  net::Network network;

  mem::DramConfig target_dram_cfg;
  target_dram_cfg.bus_bandwidth = target_bw;
  mem::Dram target(target_dram_cfg, "memory-target");
  const net::NodeId target_id = network.add_node("memory-target");

  struct Borrower {
    std::unique_ptr<nic::DisaggNic> nic;
    std::unique_ptr<workloads::RemoteStreamFlow> flow;
  };
  std::vector<Borrower> borrowers;
  const sim::Time measure_end = sim::from_ms(20.0);

  for (int i = 0; i < n; ++i) {
    const net::NodeId bid = network.add_node("borrower" + std::to_string(i));
    network.connect(bid, target_id, net::LinkConfig{});
    network.connect(target_id, bid, net::LinkConfig{});

    nic::NicConfig ncfg;
    Borrower b;
    b.nic = std::make_unique<nic::DisaggNic>(ncfg, network, bid);
    b.nic->register_lender(0, target_id, &target);
    b.nic->translator().add_segment(nic::Segment{
        mem::Range{0x1000'0000, sim::kGiB}, 0, 0, "pool-slice"});
    b.nic->attach();

    workloads::FlowConfig fcfg;
    fcfg.concurrency = 32;
    fcfg.base = 0x1000'0000;
    fcfg.span_bytes = 512 * sim::kMiB;
    fcfg.stop_at = measure_end;
    b.flow = std::make_unique<workloads::RemoteStreamFlow>(engine, *b.nic, fcfg);
    borrowers.push_back(std::move(b));
  }

  for (auto& b : borrowers) b.flow->start();
  engine.run();

  double total = 0.0;
  for (auto& b : borrowers) {
    total += b.flow->stats().bandwidth_gbps(measure_end);
  }
  return total / n;
}

void BM_Pooling(benchmark::State& state) {
  const int n = kBorrowerCounts[state.range(0)];
  for (auto _ : state) {
    Row row{};
    row.borrowers = n;
    // Borrowing: lender server bus, 140 GB/s.
    row.borrowing_per_instance_gbps =
        run_scenario(n, sim::Bandwidth::from_gbyte(140.0));
    // Pooling: CPU-less pool controller, ~one DDR4 channel pair.
    row.pooling_per_instance_gbps =
        run_scenario(n, sim::Bandwidth::from_gbyte(16.0));
    state.counters["borrowing_gbps"] = row.borrowing_per_instance_gbps;
    state.counters["pooling_gbps"] = row.pooling_per_instance_gbps;
    g_rows.push_back(row);
  }
}
BENCHMARK(BM_Pooling)
    ->DenseRange(0, static_cast<int>(std::size(kBorrowerCounts)) - 1)
    ->Iterations(1)->Unit(benchmark::kMillisecond)->ArgNames({"idx"});

void print_table() {
  core::Table table(
      "Ablation: borrowing (140 GB/s lender bus) vs pooling (16 GB/s pool)",
      {"borrowers", "borrowing: per-instance GB/s", "pooling: per-instance GB/s"});
  for (const auto& r : g_rows) {
    table.row({std::to_string(r.borrowers),
               core::Table::num(r.borrowing_per_instance_gbps, 3),
               core::Table::num(r.pooling_per_instance_gbps, 3)});
  }
  table.print();
  table.to_csv(bench::csv_path("ablation_pooling.csv"));
  std::puts("Borrowing stays network-bound (flat per-instance bandwidth);"
            " pooling collapses once aggregate demand exceeds the pool"
            " controller -- the bottleneck shift of §V.");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_table();
  return 0;
}
