// Ablation (paper §V): memory borrowing vs memory pooling.
//
// Borrowing: each borrower reaches a full lender *server* whose memory bus
// (~140 GB/s) dwarfs the network -- lender-side contention is invisible
// (Fig. 7).  Pooling: borrowers share a CPU-less memory pool whose
// controller has DDR-channel-class bandwidth; as borrowers multiply, the
// bottleneck shifts from each borrower's network link to the pool itself,
// exactly the shift the paper predicts would change its §IV-E conclusions.
//
// Both shapes are declarative scenarios built through node::Cluster: N
// borrowers, one memory target, only the target's bus bandwidth differs.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "core/report.hpp"
#include "node/cluster.hpp"
#include "scenario/scenario.hpp"
#include "workloads/stream/stream_flow.hpp"

using namespace tfsim;

namespace {

constexpr int kBorrowerCounts[] = {1, 2, 4, 8};

struct Row {
  int borrowers;
  double borrowing_per_instance_gbps;
  double pooling_per_instance_gbps;
};
std::vector<Row> g_rows;

/// N borrowers, one memory target; `target_gbyte` distinguishes a lender
/// server's bus (borrowing) from a CPU-less pool controller (pooling).
scenario::ScenarioSpec target_scenario(int n, double target_gbyte) {
  scenario::ScenarioSpec spec;
  spec.name = "ablation-pooling";
  scenario::NodeDecl borrower;
  borrower.name = "borrower";
  borrower.role = scenario::Role::kBorrower;
  borrower.with_nic = true;
  borrower.count = static_cast<std::uint32_t>(n);
  scenario::NodeDecl target;
  target.name = "memory-target";
  target.role = scenario::Role::kLender;
  target.with_nic = false;
  target.dram.bus_bandwidth = sim::Bandwidth::from_gbyte(target_gbyte);
  spec.nodes = {borrower, target};
  scenario::ReservationSpec res;
  res.size_gib = 1;  // per-borrower slice of the target
  res.name = "pool-slice";
  spec.reservations.push_back(res);
  return spec;
}

double run_scenario(int n, double target_gbyte) {
  node::Cluster cluster(target_scenario(n, target_gbyte));
  cluster.attach_remote();
  const sim::Time measure_end = sim::from_ms(20.0);

  std::vector<std::unique_ptr<workloads::RemoteStreamFlow>> flows;
  for (std::size_t i = 0; i < cluster.num_borrowers(); ++i) {
    workloads::FlowConfig fcfg;
    fcfg.concurrency = 32;
    fcfg.base = cluster.remote_base(i);
    fcfg.span_bytes = 512 * sim::kMiB;
    fcfg.stop_at = measure_end;
    flows.push_back(std::make_unique<workloads::RemoteStreamFlow>(
        cluster.engine(), cluster.borrower(i).nic(), fcfg));
  }

  for (auto& f : flows) f->start();
  cluster.engine().run();

  double total = 0.0;
  for (auto& f : flows) {
    total += f->stats().bandwidth_gbps(measure_end);
  }
  return total / n;
}

void BM_Pooling(benchmark::State& state) {
  const int n = kBorrowerCounts[state.range(0)];
  for (auto _ : state) {
    Row row{};
    row.borrowers = n;
    // Borrowing: lender server bus, 140 GB/s.
    row.borrowing_per_instance_gbps = run_scenario(n, 140.0);
    // Pooling: CPU-less pool controller, ~one DDR4 channel pair.
    row.pooling_per_instance_gbps = run_scenario(n, 16.0);
    state.counters["borrowing_gbps"] = row.borrowing_per_instance_gbps;
    state.counters["pooling_gbps"] = row.pooling_per_instance_gbps;
    g_rows.push_back(row);
  }
}
BENCHMARK(BM_Pooling)
    ->DenseRange(0, static_cast<int>(std::size(kBorrowerCounts)) - 1)
    ->Iterations(1)->Unit(benchmark::kMillisecond)->ArgNames({"idx"});

void print_table() {
  core::Table table(
      "Ablation: borrowing (140 GB/s lender bus) vs pooling (16 GB/s pool)",
      {"borrowers", "borrowing: per-instance GB/s", "pooling: per-instance GB/s"});
  for (const auto& r : g_rows) {
    table.row({std::to_string(r.borrowers),
               core::Table::num(r.borrowing_per_instance_gbps, 3),
               core::Table::num(r.pooling_per_instance_gbps, 3)});
  }
  table.print();
  table.to_csv(bench::csv_path("ablation_pooling.csv"));
  std::puts("Borrowing stays network-bound (flat per-instance bandwidth);"
            " pooling collapses once aggregate demand exceeds the pool"
            " controller -- the bottleneck shift of §V.");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_table();
  return 0;
}
