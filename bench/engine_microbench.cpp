// Event-engine hot-path microbenchmark: schedule/fire, cancellation, and
// nested-reschedule throughput of sim::Engine.
//
// Emits BENCH_engine.json (google-benchmark JSON, mirrored into
// $TFSIM_CSV_DIR) unless the caller passes its own --benchmark_out, so CI
// can archive the perf trajectory of the engine from PR to PR.
#include <benchmark/benchmark.h>

#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "sim/engine.hpp"
#include "sim/pdes.hpp"

using tfsim::sim::Engine;
using tfsim::sim::Time;

namespace {

// Schedule a batch up front, then drain it: the pure calendar cost with no
// callback work.  Timestamps collide heavily (mod 64) to exercise the
// (time, seq) tie-break path.
void BM_ScheduleFire(benchmark::State& state) {
  const auto batch = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    Engine e;
    for (std::uint64_t i = 0; i < batch; ++i) {
      e.schedule_at(i % 64, [] {});
    }
    e.run();
    benchmark::DoNotOptimize(e.executed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(batch) * state.iterations());
}
BENCHMARK(BM_ScheduleFire)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

// Schedule, cancel every other event, then drain: the tombstone-skip path.
void BM_ScheduleCancel(benchmark::State& state) {
  const auto batch = static_cast<std::uint64_t>(state.range(0));
  std::vector<Engine::EventId> ids;
  for (auto _ : state) {
    Engine e;
    ids.clear();
    ids.reserve(batch);
    for (std::uint64_t i = 0; i < batch; ++i) {
      ids.push_back(e.schedule_at(i % 64, [] {}));
    }
    for (std::size_t i = 0; i < ids.size(); i += 2) e.cancel(ids[i]);
    e.run();
    benchmark::DoNotOptimize(e.executed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(batch) * state.iterations());
}
BENCHMARK(BM_ScheduleCancel)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

// Timer-wheel churn: a fixed population of self-rescheduling events, the
// steady-state shape of NIC/link/server models (schedule from inside a
// callback, one live event retiring per step).
void BM_NestedReschedule(benchmark::State& state) {
  const auto chains = static_cast<std::uint64_t>(state.range(0));
  const std::uint64_t hops = 256;
  for (auto _ : state) {
    Engine e;
    std::uint64_t remaining = chains * hops;
    std::function<void()> hop = [&] {
      if (remaining == 0) return;  // budget spent: let the other chains drain
      --remaining;
      e.schedule_in(1 + remaining % 7, hop);
    };
    for (std::uint64_t c = 0; c < chains; ++c) {
      e.schedule_at(c % 13, hop);
    }
    e.run();
    benchmark::DoNotOptimize(e.executed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(chains * hops) *
                          state.iterations());
}
BENCHMARK(BM_NestedReschedule)->Arg(16)->Arg(256);

// PDES scaling curve: 64 domains of self-rescheduling work with periodic
// cross-domain sends, run at 1/2/4/8 workers.  Per-event compute is a
// deterministic hash spin so the windows have something to parallelize
// (a bare calendar pop is too cheap to amortize one barrier per window).
// CI archives the four rows in BENCH_engine.json; the >1 speedup only
// materializes on multi-core runners — on a single hardware thread the
// extra workers just contend.
void BM_PdesScaling(benchmark::State& state) {
  using tfsim::sim::DomainId;
  using tfsim::sim::ParallelEngine;
  using tfsim::sim::PdesConfig;

  constexpr std::size_t kDomains = 64;
  constexpr Time kLookahead = 1000;
  constexpr int kHops = 64;
  constexpr int kSpin = 4000;  // hash iterations per event (~us of compute,
                               // so a window amortizes its barrier)
  const auto threads = static_cast<unsigned>(state.range(0));

  std::uint64_t sink = 0;
  for (auto _ : state) {
    PdesConfig cfg;
    cfg.threads = threads;
    cfg.lookahead = kLookahead;
    ParallelEngine pdes(kDomains, cfg);
    std::vector<std::uint64_t> fold(kDomains, 0);
    std::function<void(DomainId, int)> hop = [&](DomainId d, int depth) {
      std::uint64_t h = pdes.domain(d).now() ^ d;
      for (int i = 0; i < kSpin; ++i) h = h * 6364136223846793005ULL + 1;
      fold[d] ^= h;
      if (depth <= 0) return;
      const auto dst = static_cast<DomainId>((d + 1) % kDomains);
      pdes.post(d, dst, pdes.domain(d).now() + kLookahead,
                [&hop, dst, depth] { hop(dst, depth - 1); });
    };
    for (std::size_t d = 0; d < kDomains; ++d) {
      pdes.post(static_cast<DomainId>(d), static_cast<DomainId>(d),
                1 + (d % kLookahead), [&hop, d] {
                  hop(static_cast<DomainId>(d), kHops);
                });
    }
    pdes.run();
    for (const std::uint64_t f : fold) sink ^= f;
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(kDomains * (kHops + 1)) * state.iterations());
  state.counters["threads"] = threads;
}
BENCHMARK(BM_PdesScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  // Default to a JSON report next to the CSVs so CI can archive it.
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag;
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  }
  if (!has_out) {
    out_flag = "--benchmark_out=" + tfsim::bench::csv_path("BENCH_engine.json");
    args.push_back(out_flag.data());
    args.push_back(const_cast<char*>("--benchmark_out_format=json"));
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
