// Serving SLO bench: a Redis-style memory tier riding through a lender
// failure under open-loop diurnal load.
//
// The scenario (scenarios/serving_diurnal by default) puts two tenants --
// a latency-sensitive frontend (QoS weight 3) and a batch tier (weight 1)
// -- on an 8x4 leaf/spine rack with two lenders.  Arrivals follow a
// diurnal rate curve; at the peak, faults.kill_lender takes lender0 down
// and every source whose primary was lender0 walks its precomputed
// failover chain onto lender1, where capacity is below combined peak
// offered load and the credit QoS gate arbitrates 3:1 between the tenants.
//
// Reported per SLO window: completed/shed/rejected/failed counts and
// p50/p99/p999 completed-request latency against the scenario's "slo"
// targets.  The headline acceptance is that p99 stays bounded through the
// kill: requests in flight to the dead lender time out and fail over, but
// the windowed tail recovers within a few windows instead of diverging.
//
// The digest is the determinism contract: all traffic moves hop-by-hop via
// Network::post_routed and every mutable byte is domain-owned, so a serial
// run must be byte-identical to a TFSIM_PDES=8 run.  When the environment
// asks for >1 worker the bench re-runs the scenario serially in-process
// and aborts on any divergence -- the CI serving-smoke job *is* the
// serial-vs-parallel gate for the serving layer.
//
// Sizing: TFSIM_SERVING_US overrides the arrival horizon (and compresses
// the diurnal period + kill time with it) so the CI smoke stays cheap.
// Results land in serving_slo.csv plus BENCH_serving.json (the CI
// artifact), alongside the resolved scenario echo.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "bench_common.hpp"
#include "core/report.hpp"
#include "core/serving.hpp"
#include "node/cluster.hpp"
#include "scenario/scenario.hpp"
#include "sim/config.hpp"
#include "sim/pdes.hpp"
#include "sim/units.hpp"

using namespace tfsim;

namespace {

core::ServingReport run_once(scenario::ScenarioSpec spec, unsigned threads) {
  spec.pdes.threads = threads;
  node::Cluster cluster(spec);
  return core::run_serving(cluster);
}

void write_bench_json(const std::string& path,
                      const scenario::ScenarioSpec& spec, unsigned threads,
                      const core::ServingReport& r) {
  std::ofstream out(path);
  out << "{\n  \"context\": {\"bench\": \"serving_slo\", \"scenario\": \""
      << spec.name << "\", \"duration_us\": " << spec.traffic.duration_us
      << ", \"pdes_threads\": " << threads << ", \"digest\": \"" << r.digest
      << "\"},\n  \"benchmarks\": [\n";
  out << "    {\"name\": \"serving/totals\", \"offered\": " << r.totals.offered
      << ", \"completed\": " << r.totals.completed
      << ", \"shed\": " << r.totals.shed
      << ", \"rejected\": " << r.totals.rejected
      << ", \"failed\": " << r.totals.failed
      << ", \"failovers\": " << r.failovers
      << ", \"windows_met\": " << r.windows_met
      << ", \"windows\": " << r.windows.size()
      << ", \"p50_us\": " << r.overall.p50()
      << ", \"p99_us\": " << r.overall.p99()
      << ", \"p999_us\": " << r.overall.p999() << "},\n";
  for (const auto& t : r.tenants) {
    out << "    {\"name\": \"serving/tenant/" << t.name
        << "\", \"weight\": " << t.weight
        << ", \"offered\": " << t.totals.offered
        << ", \"completed\": " << t.totals.completed
        << ", \"shed\": " << t.totals.shed
        << ", \"rejected\": " << t.totals.rejected
        << ", \"failed\": " << t.totals.failed
        << ", \"failovers\": " << t.failovers << "},\n";
  }
  for (std::size_t i = 0; i < r.windows.size(); ++i) {
    const core::WindowStats& w = r.windows[i];
    out << "    {\"name\": \"serving/window/" << sim::to_us(w.start)
        << "\", \"completed\": " << w.completed << ", \"shed\": " << w.shed
        << ", \"rejected\": " << w.rejected << ", \"failed\": " << w.failed
        << ", \"p50_us\": " << w.p50_us << ", \"p99_us\": " << w.p99_us
        << ", \"p999_us\": " << w.p999_us << ", \"met\": " << (w.met ? 1 : 0)
        << "}" << (i + 1 == r.windows.size() ? "\n" : ",\n");
  }
  out << "  ]\n}\n";
  std::printf("bench JSON -> %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  sim::ArgParser args(
      "Serving SLO: open-loop diurnal tier riding through a lender kill");
  args.add_string("scenario", "serving_diurnal",
                  "scenario name (scenarios/<name>.json) or path");
  if (!args.parse(argc, argv)) return 1;

  scenario::ScenarioSpec spec = bench::load_scenario(args.str("scenario"));
  if (!spec.traffic.enabled()) {
    std::fprintf(stderr,
                 "error: scenario \"%s\" has no traffic block; serving_slo "
                 "needs open-loop arrivals\n",
                 spec.name.c_str());
    return 2;
  }

  // TFSIM_SERVING_US compresses the whole experiment, keeping its shape:
  // one diurnal cycle over the horizon, the kill at the half-way peak, and
  // at least four SLO windows across the run.
  if (const std::uint64_t us = bench::env_u64("TFSIM_SERVING_US", 0);
      us > 0) {
    const auto horizon = static_cast<double>(us);
    spec.traffic.duration_us = horizon;
    spec.traffic.diurnal_period_us = horizon;
    if (!spec.faults.kill_lender.empty()) {
      spec.faults.kill_at_us = horizon / 2.0;
    }
    if (spec.slo.window_us > horizon / 4.0) {
      spec.slo.window_us = horizon / 4.0;
    }
  }

  // Resolve the worker count once, then pin it on the spec: the Cluster
  // itself honors $TFSIM_PDES, which would defeat the serial re-run below.
  unsigned threads = spec.pdes.threads;
  if (const char* env = std::getenv("TFSIM_PDES");
      env != nullptr && *env != '\0') {
    threads = sim::PdesConfig::threads_from_env();
  }
  if (threads == 0) threads = 1;  // run_serving needs the per-node calendars
  unsetenv("TFSIM_PDES");

  const core::ServingReport r = run_once(spec, threads);

  if (threads > 1) {
    // The determinism contract, checked in-process: the serial reference
    // must reproduce every observable byte-for-byte.
    const core::ServingReport serial = run_once(spec, 1);
    if (serial.serialized != r.serialized) {
      std::fprintf(stderr,
                   "serving_slo: PDES digest mismatch (serial %llu vs "
                   "%u-thread %llu)\n",
                   static_cast<unsigned long long>(serial.digest), threads,
                   static_cast<unsigned long long>(r.digest));
      return 1;
    }
    std::printf("determinism: serial == %u-thread (digest %llu)\n", threads,
                static_cast<unsigned long long>(r.digest));
  }

  core::Table table(
      "Serving SLO: " + spec.name + " (" +
          std::to_string(spec.expanded_node_count()) + " nodes, targets p50 " +
          core::Table::num(r.targets.p50_us, 0) + " / p99 " +
          core::Table::num(r.targets.p99_us, 0) + " / p999 " +
          core::Table::num(r.targets.p999_us, 0) + " us)",
      {"window (us)", "completed", "shed", "rejected", "failed", "p50 (us)",
       "p99 (us)", "p999 (us)", "SLO"});
  for (const core::WindowStats& w : r.windows) {
    table.row({core::Table::num(sim::to_us(w.start), 0),
               std::to_string(w.completed), std::to_string(w.shed),
               std::to_string(w.rejected), std::to_string(w.failed),
               core::Table::num(w.p50_us, 2), core::Table::num(w.p99_us, 2),
               core::Table::num(w.p999_us, 2), w.met ? "met" : "MISS"});
  }
  table.print();
  table.to_csv(bench::csv_path("serving_slo.csv"));

  std::printf("totals: offered %llu, completed %llu, shed %llu, rejected "
              "%llu, failed %llu; %llu failover(s); %llu/%zu windows met\n",
              static_cast<unsigned long long>(r.totals.offered),
              static_cast<unsigned long long>(r.totals.completed),
              static_cast<unsigned long long>(r.totals.shed),
              static_cast<unsigned long long>(r.totals.rejected),
              static_cast<unsigned long long>(r.totals.failed),
              static_cast<unsigned long long>(r.failovers),
              static_cast<unsigned long long>(r.windows_met),
              r.windows.size());
  for (const auto& t : r.tenants) {
    std::printf("tenant %-10s weight %u: offered %llu, completed %llu, "
                "rejected %llu, failed %llu, failovers %llu\n",
                t.name.c_str(), t.weight,
                static_cast<unsigned long long>(t.totals.offered),
                static_cast<unsigned long long>(t.totals.completed),
                static_cast<unsigned long long>(t.totals.rejected),
                static_cast<unsigned long long>(t.totals.failed),
                static_cast<unsigned long long>(t.failovers));
  }

  if (!r.balanced) {
    std::fprintf(stderr, "serving_slo: ledger unbalanced -- offered != "
                         "completed + shed + rejected + failed\n");
    return 1;
  }
  if (!spec.faults.kill_lender.empty() && r.failovers == 0) {
    std::fprintf(stderr, "serving_slo: %s was killed mid-run but no source "
                         "failed over\n",
                 spec.faults.kill_lender.c_str());
    return 1;
  }
  std::puts(
      "Paper shape: the kill at the diurnal peak fails the frontend over "
      "onto the surviving lender; the QoS gate holds the weight ratio and "
      "windowed p99 recovers within a few windows instead of diverging.");

  write_bench_json(bench::csv_path("BENCH_serving.json"), spec, threads, r);
  bench::echo_scenario(spec, "serving_slo.csv");
  return 0;
}
